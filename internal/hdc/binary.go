package hdc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"

	"hdcedge/internal/tensor"
)

// This file implements the classic bipolar HDC model: class hypervectors
// and encoded queries thresholded to {−1, +1} and bit-packed into uint64
// words, with similarity computed as Hamming agreement via XOR+popcount.
// It is the memory- and energy-minimal deployment form HDC papers use for
// microcontroller-class targets, and an extension point beyond the
// paper's int8 Edge TPU path: a d = 10,000 model shrinks to ~1.25 KB per
// class.

// BipolarModel is a sign-quantized HDC classifier. Bit value 1 encodes
// +1, bit 0 encodes −1 (zeros threshold to −1).
type BipolarModel struct {
	// Encoder is shared with the float model; queries are encoded in
	// float and then sign-thresholded.
	Encoder *Encoder
	// Dim is the hypervector width in elements.
	Dim int
	// Words holds each class's packed hypervector in ceil(Dim/64) words.
	Words [][]uint64
}

// wordsPerVector returns the packed length for dim elements.
func wordsPerVector(dim int) int { return (dim + 63) / 64 }

// WordsPerVector returns how many uint64 words a dim-element hypervector
// packs into: ceil(dim/64). Exported for execution backends that lay out
// packed buffers themselves (internal/backend/binhd).
func WordsPerVector(dim int) int { return wordsPerVector(dim) }

// Binarize converts the trained model to bipolar form.
func (m *Model) Binarize() *BipolarModel {
	d := m.Dim()
	bm := &BipolarModel{
		Encoder: m.Encoder,
		Dim:     d,
		Words:   make([][]uint64, m.K()),
	}
	for c := 0; c < m.K(); c++ {
		bm.Words[c] = packSigns(m.Classes.Row(c))
	}
	return bm
}

// packSigns packs sign(x) of every element into bits (1 for positive).
func packSigns(xs []float32) []uint64 {
	words := make([]uint64, wordsPerVector(len(xs)))
	PackSignsInto(words, xs)
	return words
}

// PackSignsInto packs sign(x) of every element of xs into dst (bit 1 for
// positive, 0 otherwise; zeros threshold to −1). dst must hold
// WordsPerVector(len(xs)) words; every dst word is fully rewritten,
// including unused high bits of the tail word, which are cleared. The word
// loop builds each word in a register before one store, so the serving
// fast path can pack without a read-modify-write per element.
func PackSignsInto(dst []uint64, xs []float32) {
	if len(dst) < wordsPerVector(len(xs)) {
		panic(fmt.Sprintf("hdc: PackSignsInto dst %d words, need %d", len(dst), wordsPerVector(len(xs))))
	}
	j := 0
	for wi := 0; wi < wordsPerVector(len(xs)); wi++ {
		var w uint64
		hi := j + 64
		if hi > len(xs) {
			hi = len(xs)
		}
		for bit := 0; j < hi; j, bit = j+1, bit+1 {
			if xs[j] > 0 {
				w |= 1 << uint(bit)
			}
		}
		dst[wi] = w
	}
}

// K returns the class count.
func (bm *BipolarModel) K() int { return len(bm.Words) }

// Bytes returns the packed model size (class hypervectors only).
func (bm *BipolarModel) Bytes() int { return bm.K() * wordsPerVector(bm.Dim) * 8 }

// hammingAgreement counts positions where the two packed vectors agree,
// over the first dim elements.
func hammingAgreement(a, b []uint64, dim int) int {
	agree := 0
	full := dim / 64
	for w := 0; w < full; w++ {
		agree += bits.OnesCount64(^(a[w] ^ b[w]))
	}
	if rem := dim % 64; rem > 0 {
		mask := uint64(1)<<uint(rem) - 1
		agree += bits.OnesCount64(^(a[full] ^ b[full]) & mask)
	}
	return agree
}

// HammingAgreement counts positions where two packed hypervectors agree
// over the first dim elements. Stray bits above dim in the tail word are
// masked out, so vectors packed from different scratch buffers compare
// equal whenever their first dim signs do.
func HammingAgreement(a, b []uint64, dim int) int { return hammingAgreement(a, b, dim) }

// ClassifyPacked returns the class whose packed hypervector agrees with
// the packed query in the most positions.
func (bm *BipolarModel) ClassifyPacked(query []uint64) int {
	best, bestAgree := 0, -1
	for c, cls := range bm.Words {
		if a := hammingAgreement(query, cls, bm.Dim); a > bestAgree {
			best, bestAgree = c, a
		}
	}
	return best
}

// Predict encodes, thresholds and classifies a raw feature vector.
func (bm *BipolarModel) Predict(features []float32) int {
	e := make([]float32, bm.Dim)
	bm.Encoder.Encode(e, features)
	return bm.ClassifyPacked(packSigns(e))
}

// PredictBatch classifies every row of an [s, n] design matrix.
func (bm *BipolarModel) PredictBatch(x *tensor.Tensor) []int {
	if x.DType != tensor.Float32 || len(x.Shape) != 2 {
		panic(fmt.Sprintf("hdc: PredictBatch needs a 2-D float matrix, got %v", x))
	}
	enc := bm.Encoder.EncodeBatch(x)
	out := make([]int, x.Shape[0])
	for i := range out {
		out[i] = bm.ClassifyPacked(packSigns(enc.Row(i)))
	}
	return out
}

// Save writes the bipolar model (packed classes plus the float encoder it
// shares with the source model) in a compact binary format: magic "HDB1",
// nonlinear u8, n u32, d u32, k u32, base [n*d]f32, packed class words
// [k * ceil(d/64)]u64, sealed by the same "HCRC" CRC32 integrity footer
// the float container uses (see save.go).
func (bm *BipolarModel) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h := crc32.NewIEEE()
	w := bufio.NewWriter(io.MultiWriter(f, h))
	w.WriteString(bipolarMagic)
	if bm.Encoder.Nonlinear {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	putU32(uint32(bm.Encoder.Features()))
	putU32(uint32(bm.Dim))
	putU32(uint32(bm.K()))
	for _, v := range bm.Encoder.Base.F32 {
		putU32(math.Float32bits(v))
	}
	var b8 [8]byte
	for _, words := range bm.Words {
		for _, word := range words {
			binary.LittleEndian.PutUint64(b8[:], word)
			w.Write(b8[:])
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("hdc: writing %s: %w", path, err)
	}
	var footer [crcFooterLen]byte
	copy(footer[:4], crcMagic)
	binary.LittleEndian.PutUint32(footer[4:], h.Sum32())
	if _, err := f.Write(footer[:]); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// bipolarMagic marks a BipolarModel container.
const bipolarMagic = "HDB1"

// LoadBipolarModel reads a model written by BipolarModel.Save. A trailing
// "HCRC" footer is verified against the payload (mismatch yields
// *ChecksumError) and stripped; footerless files from before the checksum
// existed are parsed as-is. The header dims bound every allocation — the
// payload must hold exactly n·d base floats plus k·ceil(d/64) packed
// words, and any bytes left over after the model are an error.
func LoadBipolarModel(path string) (*BipolarModel, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload := raw
	if len(raw) >= crcFooterLen && string(raw[len(raw)-crcFooterLen:len(raw)-4]) == crcMagic {
		want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
		payload = raw[:len(raw)-crcFooterLen]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, &ChecksumError{Path: path, Want: want, Got: got}
		}
	}
	src := bytes.NewReader(payload)
	r := bufio.NewReader(src)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != bipolarMagic {
		return nil, fmt.Errorf("hdc: bad bipolar magic %q in %s", mg, path)
	}
	nl, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	n, err := getU32()
	if err != nil {
		return nil, err
	}
	d, err := getU32()
	if err != nil {
		return nil, err
	}
	k, err := getU32()
	if err != nil {
		return nil, err
	}
	if n == 0 || d == 0 || k < 2 || n > 1<<20 || d > 1<<24 || k > 1<<16 {
		return nil, fmt.Errorf("hdc: implausible bipolar dims n=%d d=%d k=%d", n, d, k)
	}
	// Validate the payload length against the header before allocating:
	// a truncated or padded file fails here with exact numbers instead of
	// allocating n·d floats and failing mid-parse (or worse, accepting
	// trailing garbage).
	const headerLen = len(bipolarMagic) + 1 + 3*4
	wpv := wordsPerVector(int(d))
	wantBody := 4*int64(n)*int64(d) + 8*int64(k)*int64(wpv)
	if gotBody := int64(len(payload)) - int64(headerLen); gotBody != wantBody {
		return nil, fmt.Errorf("hdc: bipolar payload %d bytes in %s, want %d for n=%d d=%d k=%d",
			gotBody, path, wantBody, n, d, k)
	}
	base := tensor.New(tensor.Float32, int(n), int(d))
	for i := range base.F32 {
		bits, err := getU32()
		if err != nil {
			return nil, err
		}
		base.F32[i] = math.Float32frombits(bits)
	}
	bm := &BipolarModel{
		Encoder: &Encoder{Base: base, Nonlinear: nl == 1},
		Dim:     int(d),
		Words:   make([][]uint64, k),
	}
	var b8 [8]byte
	for c := range bm.Words {
		bm.Words[c] = make([]uint64, wpv)
		for wdx := range bm.Words[c] {
			if _, err := io.ReadFull(r, b8[:]); err != nil {
				return nil, err
			}
			bm.Words[c][wdx] = binary.LittleEndian.Uint64(b8[:])
		}
	}
	if rest := src.Len() + r.Buffered(); rest != 0 {
		return nil, fmt.Errorf("hdc: %d trailing bytes after bipolar model in %s", rest, path)
	}
	return bm, nil
}
