package hdc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"

	"hdcedge/internal/tensor"
)

// This file implements the classic bipolar HDC model: class hypervectors
// and encoded queries thresholded to {−1, +1} and bit-packed into uint64
// words, with similarity computed as Hamming agreement via XOR+popcount.
// It is the memory- and energy-minimal deployment form HDC papers use for
// microcontroller-class targets, and an extension point beyond the
// paper's int8 Edge TPU path: a d = 10,000 model shrinks to ~1.25 KB per
// class.

// BipolarModel is a sign-quantized HDC classifier. Bit value 1 encodes
// +1, bit 0 encodes −1 (zeros threshold to −1).
type BipolarModel struct {
	// Encoder is shared with the float model; queries are encoded in
	// float and then sign-thresholded.
	Encoder *Encoder
	// Dim is the hypervector width in elements.
	Dim int
	// Words holds each class's packed hypervector in ceil(Dim/64) words.
	Words [][]uint64
}

// wordsPerVector returns the packed length for dim elements.
func wordsPerVector(dim int) int { return (dim + 63) / 64 }

// Binarize converts the trained model to bipolar form.
func (m *Model) Binarize() *BipolarModel {
	d := m.Dim()
	bm := &BipolarModel{
		Encoder: m.Encoder,
		Dim:     d,
		Words:   make([][]uint64, m.K()),
	}
	for c := 0; c < m.K(); c++ {
		bm.Words[c] = packSigns(m.Classes.Row(c))
	}
	return bm
}

// packSigns packs sign(x) of every element into bits (1 for positive).
func packSigns(xs []float32) []uint64 {
	words := make([]uint64, wordsPerVector(len(xs)))
	for i, v := range xs {
		if v > 0 {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return words
}

// K returns the class count.
func (bm *BipolarModel) K() int { return len(bm.Words) }

// Bytes returns the packed model size (class hypervectors only).
func (bm *BipolarModel) Bytes() int { return bm.K() * wordsPerVector(bm.Dim) * 8 }

// hammingAgreement counts positions where the two packed vectors agree,
// over the first dim elements.
func hammingAgreement(a, b []uint64, dim int) int {
	agree := 0
	full := dim / 64
	for w := 0; w < full; w++ {
		agree += bits.OnesCount64(^(a[w] ^ b[w]))
	}
	if rem := dim % 64; rem > 0 {
		mask := uint64(1)<<uint(rem) - 1
		agree += bits.OnesCount64(^(a[full] ^ b[full]) & mask)
	}
	return agree
}

// ClassifyPacked returns the class whose packed hypervector agrees with
// the packed query in the most positions.
func (bm *BipolarModel) ClassifyPacked(query []uint64) int {
	best, bestAgree := 0, -1
	for c, cls := range bm.Words {
		if a := hammingAgreement(query, cls, bm.Dim); a > bestAgree {
			best, bestAgree = c, a
		}
	}
	return best
}

// Predict encodes, thresholds and classifies a raw feature vector.
func (bm *BipolarModel) Predict(features []float32) int {
	e := make([]float32, bm.Dim)
	bm.Encoder.Encode(e, features)
	return bm.ClassifyPacked(packSigns(e))
}

// PredictBatch classifies every row of an [s, n] design matrix.
func (bm *BipolarModel) PredictBatch(x *tensor.Tensor) []int {
	if x.DType != tensor.Float32 || len(x.Shape) != 2 {
		panic(fmt.Sprintf("hdc: PredictBatch needs a 2-D float matrix, got %v", x))
	}
	enc := bm.Encoder.EncodeBatch(x)
	out := make([]int, x.Shape[0])
	for i := range out {
		out[i] = bm.ClassifyPacked(packSigns(enc.Row(i)))
	}
	return out
}

// Save writes the bipolar model (packed classes plus the float encoder it
// shares with the source model) in a compact binary format: magic "HDB1",
// nonlinear u8, n u32, d u32, k u32, base [n*d]f32, packed class words
// [k * ceil(d/64)]u64.
func (bm *BipolarModel) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.WriteString("HDB1")
	if bm.Encoder.Nonlinear {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	putU32(uint32(bm.Encoder.Features()))
	putU32(uint32(bm.Dim))
	putU32(uint32(bm.K()))
	for _, v := range bm.Encoder.Base.F32 {
		putU32(math.Float32bits(v))
	}
	var b8 [8]byte
	for _, words := range bm.Words {
		for _, word := range words {
			binary.LittleEndian.PutUint64(b8[:], word)
			w.Write(b8[:])
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("hdc: writing %s: %w", path, err)
	}
	return f.Close()
}

// LoadBipolarModel reads a model written by BipolarModel.Save.
func LoadBipolarModel(path string) (*BipolarModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != "HDB1" {
		return nil, fmt.Errorf("hdc: bad bipolar magic %q in %s", mg, path)
	}
	nl, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	n, err := getU32()
	if err != nil {
		return nil, err
	}
	d, err := getU32()
	if err != nil {
		return nil, err
	}
	k, err := getU32()
	if err != nil {
		return nil, err
	}
	if n == 0 || d == 0 || k < 2 || n > 1<<20 || d > 1<<24 || k > 1<<16 {
		return nil, fmt.Errorf("hdc: implausible bipolar dims n=%d d=%d k=%d", n, d, k)
	}
	base := tensor.New(tensor.Float32, int(n), int(d))
	for i := range base.F32 {
		bits, err := getU32()
		if err != nil {
			return nil, err
		}
		base.F32[i] = math.Float32frombits(bits)
	}
	bm := &BipolarModel{
		Encoder: &Encoder{Base: base, Nonlinear: nl == 1},
		Dim:     int(d),
		Words:   make([][]uint64, k),
	}
	var b8 [8]byte
	wpv := wordsPerVector(int(d))
	for c := range bm.Words {
		bm.Words[c] = make([]uint64, wpv)
		for wdx := range bm.Words[c] {
			if _, err := io.ReadFull(r, b8[:]); err != nil {
				return nil, err
			}
			bm.Words[c][wdx] = binary.LittleEndian.Uint64(b8[:])
		}
	}
	return bm, nil
}
