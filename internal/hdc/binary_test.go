package hdc

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"hdcedge/internal/rng"
)

func TestBinarizeAccuracyNearFloat(t *testing.T) {
	// The classic HDC result: sign-quantizing a wide model costs only a
	// few points of accuracy.
	train, test := synthTrainTest(t, 32, 1600, 5, 700)
	m, _, err := Train(train, nil, TrainConfig{Dim: 4096, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.Binarize()
	floatAcc := m.Accuracy(test)
	preds := bm.PredictBatch(test.X)
	correct := 0
	for i, p := range preds {
		if p == test.Y[i] {
			correct++
		}
	}
	binAcc := float64(correct) / float64(len(preds))
	if binAcc < floatAcc-0.08 {
		t.Fatalf("bipolar accuracy %.3f too far below float %.3f", binAcc, floatAcc)
	}
}

func TestBinarizeModelSize(t *testing.T) {
	enc := NewEncoder(8, 10000, true, rng.New(1))
	m := NewModel(enc, 26)
	bm := m.Binarize()
	// ceil(10000/64) = 157 words = 1256 bytes per class.
	if want := 26 * 157 * 8; bm.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", bm.Bytes(), want)
	}
}

func TestPackSigns(t *testing.T) {
	xs := []float32{1, -1, 0, 2, -0.5}
	w := packSigns(xs)
	// Positions 0 and 3 positive; zero thresholds to -1.
	if w[0] != 0b01001 {
		t.Fatalf("packed %b", w[0])
	}
}

func TestHammingAgreement(t *testing.T) {
	a := []uint64{0b1010, 0}
	b := []uint64{0b1000, 0}
	// Over 4 elements: positions 3 agree(1/1), 2 disagree, 1 agree(1? a:1,b:0 disagree)...
	// a = 1010, b = 1000: agree at bits 0 (0,0), 2 (0,0), 3 (1,1); disagree at bit 1.
	if got := hammingAgreement(a, b, 4); got != 3 {
		t.Fatalf("agreement = %d, want 3", got)
	}
	// Full-width check.
	c := []uint64{^uint64(0)}
	d := []uint64{0}
	if got := hammingAgreement(c, d, 64); got != 0 {
		t.Fatalf("opposite vectors agree %d times", got)
	}
	if got := hammingAgreement(c, c, 64); got != 64 {
		t.Fatalf("identical vectors agree %d times", got)
	}
}

func TestHammingAgreementPartialWord(t *testing.T) {
	a := []uint64{^uint64(0)}
	b := []uint64{^uint64(0)}
	for dim := 1; dim <= 64; dim++ {
		if got := hammingAgreement(a, b, dim); got != dim {
			t.Fatalf("dim %d: agreement %d", dim, got)
		}
	}
}

func TestBipolarPredictSingleMatchesBatch(t *testing.T) {
	train, test := synthTrainTest(t, 16, 600, 3, 701)
	m, _, err := Train(train, nil, TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.Binarize()
	batch := bm.PredictBatch(test.X)
	for i := 0; i < min(50, test.Samples()); i++ {
		if single := bm.Predict(test.X.Row(i)); single != batch[i] {
			t.Fatalf("sample %d: single %d vs batch %d", i, single, batch[i])
		}
	}
}

// Property: agreement is symmetric and bounded by dim.
func TestQuickHammingProperties(t *testing.T) {
	f := func(aw, bw uint64, dim8 uint8) bool {
		dim := int(dim8%64) + 1
		a := []uint64{aw}
		b := []uint64{bw}
		ab := hammingAgreement(a, b, dim)
		ba := hammingAgreement(b, a, dim)
		if ab != ba {
			return false
		}
		if ab < 0 || ab > dim {
			return false
		}
		// Self-agreement is always dim.
		return hammingAgreement(a, a, dim) == dim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBipolarSaveLoad(t *testing.T) {
	train, test := synthTrainTest(t, 16, 600, 3, 702)
	m, _, err := Train(train, nil, TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.Binarize()
	path := filepath.Join(t.TempDir(), "model.hdb")
	if err := bm.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBipolarModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != bm.Dim || got.K() != bm.K() {
		t.Fatal("dims changed in round trip")
	}
	for i := 0; i < 40; i++ {
		if got.Predict(test.X.Row(i)) != bm.Predict(test.X.Row(i)) {
			t.Fatalf("reloaded bipolar model diverges at %d", i)
		}
	}
}

func TestLoadBipolarRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.hdb")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBipolarModel(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

// trainedBipolar builds a small deterministic bipolar model for the
// container tests.
func trainedBipolar(t testing.TB, dim int) *BipolarModel {
	t.Helper()
	train, _ := synthTrainTest(t, 12, 400, 3, 703)
	m, _, err := Train(train, nil, TrainConfig{Dim: dim, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m.Binarize()
}

// TestBipolarSaveFooter covers the integrity seal end to end: a saved file
// carries the "HCRC" footer, corruption anywhere in the payload or footer
// is a *ChecksumError, a legacy footerless blob still loads, and trailing
// bytes after either form are rejected.
func TestBipolarSaveFooter(t *testing.T) {
	bm := trainedBipolar(t, 192)
	dir := t.TempDir()
	sealed := filepath.Join(dir, "model.hdb")
	if err := bm.Save(sealed); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[len(raw)-8:len(raw)-4]) != "HCRC" {
		t.Fatalf("saved bipolar file lacks the HCRC integrity footer")
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantCRC bool // expect *ChecksumError specifically
		wantErr bool
	}{
		{"intact", func(b []byte) []byte { return b }, false, false},
		{"legacy-footerless", func(b []byte) []byte { return b[:len(b)-8] }, false, false},
		{"payload-flip", func(b []byte) []byte { b[9] ^= 0x40; return b }, true, true},
		{"footer-flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, true, true},
		{"trailing-after-footer", func(b []byte) []byte { return append(b, 0xEE) }, false, true},
		{"trailing-after-legacy", func(b []byte) []byte { return append(b[:len(b)-8], 0xEE, 0xEE) }, false, true},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-64] }, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := append([]byte(nil), raw...)
			path := filepath.Join(dir, tc.name+".hdb")
			if err := os.WriteFile(path, tc.mutate(buf), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := LoadBipolarModel(path)
			if tc.wantErr {
				if err == nil {
					t.Fatal("corrupted/padded file accepted")
				}
				var ce *ChecksumError
				if tc.wantCRC && !errors.As(err, &ce) {
					t.Fatalf("error %v (%T) is not a *ChecksumError", err, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got.Dim != bm.Dim || got.K() != bm.K() {
				t.Fatal("round trip changed dims")
			}
			for c := range bm.Words {
				for w := range bm.Words[c] {
					if got.Words[c][w] != bm.Words[c][w] {
						t.Fatalf("class %d word %d changed in round trip", c, w)
					}
				}
			}
		})
	}
}

// TestLoadBipolarRejectsLengthMismatch: the words-per-vector payload check
// fires before any n·d allocation happens, with exact numbers in the error.
func TestLoadBipolarRejectsLengthMismatch(t *testing.T) {
	bm := trainedBipolar(t, 128)
	path := filepath.Join(t.TempDir(), "model.hdb")
	if err := bm.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := raw[:len(raw)-8] // drop the footer so only the length check can fire
	for _, cut := range []int{1, 7, 8, 64} {
		bad := filepath.Join(t.TempDir(), "cut.hdb")
		if err := os.WriteFile(bad, legacy[:len(legacy)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBipolarModel(bad); err == nil {
			t.Fatalf("payload short by %d bytes accepted", cut)
		}
	}
	// A header that advertises a huge model over a tiny payload must be
	// rejected by the length check, not attempted.
	head := append([]byte(nil), legacy[:17]...)
	binary.LittleEndian.PutUint32(head[5:9], 1<<20)   // n
	binary.LittleEndian.PutUint32(head[9:13], 1<<24)  // d
	binary.LittleEndian.PutUint32(head[13:17], 1<<16) // k
	huge := filepath.Join(t.TempDir(), "huge.hdb")
	if err := os.WriteFile(huge, head, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBipolarModel(huge); err == nil {
		t.Fatal("huge-header tiny-payload file accepted")
	}
}

// TestPackSignsTailWord: when Dim % 64 != 0, stray high bits in the last
// word must never change similarity — PackSignsInto clears them, and
// hammingAgreement masks them even if a caller left them set.
func TestPackSignsTailWord(t *testing.T) {
	for _, dim := range []int{1, 63, 65, 100, 130, 191} {
		xs := make([]float32, dim)
		r := rng.New(uint64(dim))
		for i := range xs {
			xs[i] = float32(r.Uint64()%512)/256 - 1
		}
		packed := packSigns(xs)
		words := wordsPerVector(dim)
		if rem := dim % 64; rem != 0 {
			if hi := packed[words-1] >> uint(rem); hi != 0 {
				t.Fatalf("dim %d: PackSignsInto left stray high bits %b", dim, hi)
			}
		}
		// Setting every unused high bit must not change agreement against
		// any other vector.
		dirty := append([]uint64(nil), packed...)
		if rem := dim % 64; rem != 0 {
			dirty[words-1] |= ^(uint64(1)<<uint(rem) - 1)
		}
		other := packSigns(xs[:dim]) // self-comparison plus a shifted variant
		if a, b := hammingAgreement(packed, other, dim), hammingAgreement(dirty, other, dim); a != b {
			t.Fatalf("dim %d: stray tail bits changed agreement %d -> %d", dim, a, b)
		}
		if got := hammingAgreement(dirty, dirty, dim); got != dim {
			t.Fatalf("dim %d: dirty self-agreement %d", dim, got)
		}
	}
}

// TestBipolarPackedVsFloatPredict: across random models (including
// non-multiple-of-64 dims), classifying the packed encoding must agree
// with sign-thresholding the float encoding — Predict is the packed path,
// and the reference below recomputes it from first principles.
func TestBipolarPackedVsFloatPredict(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 8; trial++ {
		n := 4 + int(r.Uint64()%12)
		d := 65 + int(r.Uint64()%200)
		k := 2 + int(r.Uint64()%5)
		enc := NewEncoder(n, d, trial%2 == 0, rng.New(uint64(100+trial)))
		m := NewModel(enc, k)
		for i := range m.Classes.F32 {
			m.Classes.F32[i] = float32(r.Uint64()%512)/256 - 1
		}
		bm := m.Binarize()
		x := make([]float32, n)
		for probe := 0; probe < 20; probe++ {
			for i := range x {
				x[i] = float32(r.Uint64()%512)/256 - 1
			}
			// Reference: float encode, sign to ±1, count sign agreements
			// against the float class rows directly.
			e := make([]float32, d)
			enc.Encode(e, x)
			best, bestAgree := 0, -1
			for c := 0; c < k; c++ {
				row := m.Classes.Row(c)
				agree := 0
				for j := 0; j < d; j++ {
					if (e[j] > 0) == (row[j] > 0) {
						agree++
					}
				}
				if agree > bestAgree {
					best, bestAgree = c, agree
				}
			}
			if got := bm.Predict(x); got != best {
				t.Fatalf("trial %d probe %d (n=%d d=%d k=%d): packed Predict %d, float reference %d",
					trial, probe, n, d, k, got, best)
			}
		}
	}
}

// FuzzLoadBipolarModel: arbitrary bytes must either parse into a model
// that saves and reloads identically, or fail cleanly — never panic or
// over-allocate on a lying header.
func FuzzLoadBipolarModel(f *testing.F) {
	dir := f.TempDir()
	seedModel := func(dim int) []byte {
		train, _ := synthTrainTest(f, 8, 120, 3, 704)
		m, _, err := Train(train, nil, TrainConfig{Dim: dim, Epochs: 1, LearningRate: 1, Nonlinear: true, Seed: 5})
		if err != nil {
			f.Fatal(err)
		}
		path := filepath.Join(dir, "seed.hdb")
		if err := m.Binarize().Save(path); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	sealed := seedModel(96)
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-8]) // legacy footerless
	f.Add(sealed[:9])
	f.Add([]byte("HDB1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.hdb")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		bm, err := LoadBipolarModel(path)
		if err != nil {
			return
		}
		// Anything that parses must re-save and reload bit-identically.
		again := filepath.Join(t.TempDir(), "again.hdb")
		if err := bm.Save(again); err != nil {
			t.Fatalf("parsed model fails to save: %v", err)
		}
		back, err := LoadBipolarModel(again)
		if err != nil {
			t.Fatalf("re-saved model fails to load: %v", err)
		}
		if back.Dim != bm.Dim || back.K() != bm.K() {
			t.Fatal("round trip changed dims")
		}
	})
}
