package hdc

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"hdcedge/internal/rng"
)

func TestBinarizeAccuracyNearFloat(t *testing.T) {
	// The classic HDC result: sign-quantizing a wide model costs only a
	// few points of accuracy.
	train, test := synthTrainTest(t, 32, 1600, 5, 700)
	m, _, err := Train(train, nil, TrainConfig{Dim: 4096, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.Binarize()
	floatAcc := m.Accuracy(test)
	preds := bm.PredictBatch(test.X)
	correct := 0
	for i, p := range preds {
		if p == test.Y[i] {
			correct++
		}
	}
	binAcc := float64(correct) / float64(len(preds))
	if binAcc < floatAcc-0.08 {
		t.Fatalf("bipolar accuracy %.3f too far below float %.3f", binAcc, floatAcc)
	}
}

func TestBinarizeModelSize(t *testing.T) {
	enc := NewEncoder(8, 10000, true, rng.New(1))
	m := NewModel(enc, 26)
	bm := m.Binarize()
	// ceil(10000/64) = 157 words = 1256 bytes per class.
	if want := 26 * 157 * 8; bm.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", bm.Bytes(), want)
	}
}

func TestPackSigns(t *testing.T) {
	xs := []float32{1, -1, 0, 2, -0.5}
	w := packSigns(xs)
	// Positions 0 and 3 positive; zero thresholds to -1.
	if w[0] != 0b01001 {
		t.Fatalf("packed %b", w[0])
	}
}

func TestHammingAgreement(t *testing.T) {
	a := []uint64{0b1010, 0}
	b := []uint64{0b1000, 0}
	// Over 4 elements: positions 3 agree(1/1), 2 disagree, 1 agree(1? a:1,b:0 disagree)...
	// a = 1010, b = 1000: agree at bits 0 (0,0), 2 (0,0), 3 (1,1); disagree at bit 1.
	if got := hammingAgreement(a, b, 4); got != 3 {
		t.Fatalf("agreement = %d, want 3", got)
	}
	// Full-width check.
	c := []uint64{^uint64(0)}
	d := []uint64{0}
	if got := hammingAgreement(c, d, 64); got != 0 {
		t.Fatalf("opposite vectors agree %d times", got)
	}
	if got := hammingAgreement(c, c, 64); got != 64 {
		t.Fatalf("identical vectors agree %d times", got)
	}
}

func TestHammingAgreementPartialWord(t *testing.T) {
	a := []uint64{^uint64(0)}
	b := []uint64{^uint64(0)}
	for dim := 1; dim <= 64; dim++ {
		if got := hammingAgreement(a, b, dim); got != dim {
			t.Fatalf("dim %d: agreement %d", dim, got)
		}
	}
}

func TestBipolarPredictSingleMatchesBatch(t *testing.T) {
	train, test := synthTrainTest(t, 16, 600, 3, 701)
	m, _, err := Train(train, nil, TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.Binarize()
	batch := bm.PredictBatch(test.X)
	for i := 0; i < min(50, test.Samples()); i++ {
		if single := bm.Predict(test.X.Row(i)); single != batch[i] {
			t.Fatalf("sample %d: single %d vs batch %d", i, single, batch[i])
		}
	}
}

// Property: agreement is symmetric and bounded by dim.
func TestQuickHammingProperties(t *testing.T) {
	f := func(aw, bw uint64, dim8 uint8) bool {
		dim := int(dim8%64) + 1
		a := []uint64{aw}
		b := []uint64{bw}
		ab := hammingAgreement(a, b, dim)
		ba := hammingAgreement(b, a, dim)
		if ab != ba {
			return false
		}
		if ab < 0 || ab > dim {
			return false
		}
		// Self-agreement is always dim.
		return hammingAgreement(a, a, dim) == dim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBipolarSaveLoad(t *testing.T) {
	train, test := synthTrainTest(t, 16, 600, 3, 702)
	m, _, err := Train(train, nil, TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bm := m.Binarize()
	path := filepath.Join(t.TempDir(), "model.hdb")
	if err := bm.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBipolarModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != bm.Dim || got.K() != bm.K() {
		t.Fatal("dims changed in round trip")
	}
	for i := 0; i < 40; i++ {
		if got.Predict(test.X.Row(i)) != bm.Predict(test.X.Row(i)) {
			t.Fatalf("reloaded bipolar model diverges at %d", i)
		}
	}
}

func TestLoadBipolarRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.hdb")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBipolarModel(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
