package hdc

import (
	"fmt"
	"sort"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Regenerate implements dimension regeneration (the OnlineHD refinement
// the paper's reference [17] describes): dimensions whose class
// hypervector entries carry the least discriminative power — the smallest
// variance across classes — contribute noise rather than signal. This
// routine re-draws the base hypervector rows of the weakest `fraction` of
// dimensions, zeroes those class entries, and returns how many dimensions
// were regenerated. Callers then run a few refinement epochs so the fresh
// dimensions pick up signal.
//
// With fewer than two classes the across-class variance is identically
// zero for every dimension, so "weakest dimension" has no meaning; rather
// than silently regenerating an arbitrary subset, that case is an error.
// fraction*d truncates toward zero: a fraction below 1/d regenerates
// nothing, and fraction 1 regenerates every dimension.
func (m *Model) Regenerate(fraction float64, r *rng.RNG) (int, error) {
	d := m.Dim()
	k := m.K()
	if k < 2 {
		return 0, fmt.Errorf("hdc: regenerate needs at least 2 classes, got %d (across-class variance is identically zero)", k)
	}
	if fraction <= 0 {
		return 0, nil
	}
	if fraction > 1 {
		fraction = 1
	}
	// Variance of each dimension's entries across classes.
	type dimVar struct {
		idx int
		v   float64
	}
	vars := make([]dimVar, d)
	for j := 0; j < d; j++ {
		var sum, sumSq float64
		for c := 0; c < k; c++ {
			v := float64(m.Classes.Row(c)[j])
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(k)
		vars[j] = dimVar{idx: j, v: sumSq/float64(k) - mean*mean}
	}
	sort.Slice(vars, func(a, b int) bool { return vars[a].v < vars[b].v })

	n := int(fraction * float64(d))
	if n == 0 {
		return 0, nil
	}
	base := m.Encoder.Base
	nf := m.Encoder.Features()
	for _, dv := range vars[:n] {
		j := dv.idx
		for f := 0; f < nf; f++ {
			base.F32[f*base.Shape[1]+j] = float32(r.NormFloat64())
		}
		for c := 0; c < k; c++ {
			m.Classes.Row(c)[j] = 0
		}
	}
	return n, nil
}

// RegenerateAndRefine regenerates the weakest dimensions and runs
// refinement epochs on the (re-encoded) training data.
func (m *Model) RegenerateAndRefine(x *tensor.Tensor, y []int, fraction float64,
	epochs int, lr float32, r *rng.RNG) (int, *TrainStats, error) {
	if epochs < 1 {
		return 0, nil, fmt.Errorf("hdc: refinement needs at least one epoch")
	}
	n, err := m.Regenerate(fraction, r)
	if err != nil {
		return 0, nil, err
	}
	encoded := m.Encoder.EncodeBatch(x)
	stats, err := m.FitEncoded(encoded, y, nil, nil, epochs, lr, r)
	if err != nil {
		return n, nil, err
	}
	return n, stats, nil
}
