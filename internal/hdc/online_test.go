package hdc

import (
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func TestTrainOnlineSinglePassCompetitive(t *testing.T) {
	// One confidence-weighted pass must get within a few points of a
	// multi-epoch perceptron — the OnlineHD claim.
	train, test := synthTrainTest(t, 32, 1600, 5, 600)
	online, _, err := TrainOnline(train, 2048, 1, OnlineConfig{LearningRate: 1}, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := Train(train, nil, TrainConfig{Dim: 2048, Epochs: 10, LearningRate: 1, Nonlinear: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Online models have scaled class norms; evaluate with cosine.
	online.Metric = CosineSimilarity
	accOnline := online.Accuracy(test)
	accMulti := multi.Accuracy(test)
	if accOnline < accMulti-0.08 {
		t.Fatalf("single-pass accuracy %.3f too far below 10-epoch %.3f", accOnline, accMulti)
	}
}

func TestTrainOnlineExtraPassesHelp(t *testing.T) {
	train, test := synthTrainTest(t, 28, 1400, 6, 601)
	one, _, err := TrainOnline(train, 1024, 1, OnlineConfig{LearningRate: 1}, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	three, _, err := TrainOnline(train, 1024, 3, OnlineConfig{LearningRate: 1}, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	one.Metric = CosineSimilarity
	three.Metric = CosineSimilarity
	if three.Accuracy(test) < one.Accuracy(test)-0.03 {
		t.Fatalf("extra passes hurt: %.3f vs %.3f", three.Accuracy(test), one.Accuracy(test))
	}
}

func TestFitOnlineValidation(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 3)
	e := tensor.New(tensor.Float32, 2, 64)
	if _, err := m.FitOnline(e, []int{0}, OnlineConfig{}, rng.New(2)); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := m.FitOnline(e, []int{0, 9}, OnlineConfig{}, rng.New(2)); err == nil {
		t.Fatal("bad label accepted")
	}
	bad := tensor.New(tensor.Float32, 2, 32)
	if _, err := m.FitOnline(bad, []int{0, 1}, OnlineConfig{}, rng.New(2)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestFitOnlineConfidenceWeighting(t *testing.T) {
	// A confidently-classified sample must produce a smaller update than
	// a borderline one.
	enc := NewEncoder(2, 128, true, rng.New(9))
	m := NewModel(enc, 2)
	r := rng.New(10)
	proto := make([]float32, 128)
	r.FillNormal(proto)
	// Make class 1 strongly aligned with proto, class 0 its negation.
	copy(m.Classes.Row(1), proto)
	for j, v := range proto {
		m.Classes.Row(0)[j] = -v
	}
	encT := tensor.New(tensor.Float32, 1, 128)
	copy(encT.Row(0), proto)
	before := append([]float32(nil), m.Classes.Row(0)...)
	// Sample labelled 0 but maximally similar to class 1: a large
	// (1 − δ) misprediction update must fire.
	if _, err := m.FitOnline(encT, []int{0}, OnlineConfig{LearningRate: 1}, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	moved := 0.0
	for j := range before {
		d := float64(m.Classes.Row(0)[j] - before[j])
		moved += d * d
	}
	if moved == 0 {
		t.Fatal("misprediction produced no update")
	}
}

// TestFitOnlineMarginAccuracyAccounting is the regression test for the
// accounting bug where margin reinforcements of *correctly classified*
// samples were counted as errors: with a margin high enough that every
// correct sample triggers a reinforcement, the buggy accounting reported
// TrainAccuracy near zero even when the model predicted everything right.
func TestFitOnlineMarginAccuracyAccounting(t *testing.T) {
	enc := NewEncoder(2, 64, true, rng.New(30))
	m := NewModel(enc, 2)
	r := rng.New(31)
	proto := make([]float32, 64)
	r.FillNormal(proto)
	copy(m.Classes.Row(1), proto)
	for j, v := range proto {
		m.Classes.Row(0)[j] = -v
	}
	// Every sample is its class prototype plus independent noise: the
	// prediction stays correct (δ against the right class is strongly
	// positive, against the opposite strongly negative) but cosine
	// similarity lands well below a 0.95 margin, so every sample fires a
	// reinforcement update.
	encT := tensor.New(tensor.Float32, 4, 64)
	y := []int{1, 0, 1, 0}
	noise := make([]float32, 64)
	for i, label := range y {
		src := proto
		if label == 0 {
			src = m.Classes.Row(0)
		}
		r.FillNormal(noise)
		row := encT.Row(i)
		for j := range row {
			row[j] = src[j] + 0.5*noise[j]
		}
	}
	stats, err := m.FitOnline(encT, y, OnlineConfig{LearningRate: 0.01, Margin: 0.95}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	es := stats.Epochs[0]
	if es.Mispredictions != 0 {
		t.Fatalf("all-correct pass reported %d mispredictions", es.Mispredictions)
	}
	if es.Updates == 0 {
		t.Fatal("margin reinforcement never fired; test premise broken")
	}
	// Pre-fix this was 1 - updates/s = 0 with every sample reinforcing.
	if es.TrainAccuracy != 1 {
		t.Fatalf("TrainAccuracy %.3f counts margin reinforcements as errors; want 1.0 (updates=%d)",
			es.TrainAccuracy, es.Updates)
	}
}

func TestAdaptStreamingImproves(t *testing.T) {
	train, test := synthTrainTest(t, 24, 1500, 4, 602)
	// Start with an untrained model and stream the training set through
	// Adapt once.
	r := rng.New(7)
	enc := NewEncoder(train.Features(), 1024, true, r)
	m := NewModel(enc, train.Classes)
	for i := 0; i < train.Samples(); i++ {
		m.Adapt(train.X.Row(i), train.Y[i], 1)
	}
	if acc := m.Accuracy(test); acc < 0.65 {
		t.Fatalf("streamed accuracy %.3f (chance 0.25)", acc)
	}
}

func TestAdaptReturnsUpdatedFlag(t *testing.T) {
	train, _ := synthTrainTest(t, 16, 400, 3, 603)
	enc := NewEncoder(train.Features(), 256, true, rng.New(8))
	m := NewModel(enc, train.Classes)
	// First sample on a zero model: argmax of zeros is class 0.
	pred, updated := m.Adapt(train.X.Row(0), train.Y[0], 1)
	if train.Y[0] != 0 {
		if !updated || pred == train.Y[0] {
			t.Fatalf("first adapt on zero model: pred %d, updated %v", pred, updated)
		}
	}
	// Re-presenting the same sample immediately must now be correct.
	pred2, updated2 := m.Adapt(train.X.Row(0), train.Y[0], 1)
	if pred2 != train.Y[0] && !updated2 {
		t.Fatal("second adapt neither correct nor updated")
	}
}

// TestAdaptWithMatchesAdapt pins that the scratch-reuse variant is the
// same update rule: identical models streamed through Adapt and AdaptWith
// must end bit-identical.
func TestAdaptWithMatchesAdapt(t *testing.T) {
	train, _ := synthTrainTest(t, 20, 600, 4, 604)
	enc := NewEncoder(train.Features(), 512, true, rng.New(9))
	a := NewModel(enc, train.Classes)
	b := a.Clone()
	scratch := b.NewAdaptScratch()
	for i := 0; i < train.Samples(); i++ {
		predA, updA := a.Adapt(train.X.Row(i), train.Y[i], 1)
		predB, updB := b.AdaptWith(scratch, train.X.Row(i), train.Y[i], 1)
		if predA != predB || updA != updB {
			t.Fatalf("sample %d diverged: Adapt (%d,%v) vs AdaptWith (%d,%v)",
				i, predA, updA, predB, updB)
		}
	}
	for j, v := range a.Classes.F32 {
		if b.Classes.F32[j] != v {
			t.Fatalf("class matrices diverged at element %d", j)
		}
	}
}

// TestAdaptWithZeroAllocs enforces the binhd zero-alloc discipline on the
// streaming hot path: with caller-owned scratch, AdaptWith and AdaptOnline
// must not touch the heap.
func TestAdaptWithZeroAllocs(t *testing.T) {
	train, _ := synthTrainTest(t, 16, 200, 3, 605)
	enc := NewEncoder(train.Features(), 256, true, rng.New(10))
	m := NewModel(enc, train.Classes)
	scratch := m.NewAdaptScratch()
	i := 0
	next := func() int { v := i; i = (i + 1) % train.Samples(); return v }
	if n := testing.AllocsPerRun(200, func() {
		s := next()
		m.AdaptWith(scratch, train.X.Row(s), train.Y[s], 1)
	}); n != 0 {
		t.Fatalf("AdaptWith allocates %.1f objects per call; want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		s := next()
		m.AdaptOnline(scratch, train.X.Row(s), train.Y[s], OnlineConfig{LearningRate: 1, Margin: 0.3})
	}); n != 0 {
		t.Fatalf("AdaptOnline allocates %.1f objects per call; want 0", n)
	}
}

// TestAdaptOnlineConfidenceWeighting checks the streaming rule matches the
// batch FitOnline semantics: mispredictions correct with (1 − δ) weights,
// and the margin reinforces weakly-correct samples.
func TestAdaptOnlineConfidenceWeighting(t *testing.T) {
	train, test := synthTrainTest(t, 24, 1200, 4, 606)
	enc := NewEncoder(train.Features(), 1024, true, rng.New(11))
	m := NewModel(enc, train.Classes)
	scratch := m.NewAdaptScratch()
	updates := 0
	for i := 0; i < train.Samples(); i++ {
		if _, upd := m.AdaptOnline(scratch, train.X.Row(i), train.Y[i], OnlineConfig{LearningRate: 1}); upd {
			updates++
		}
	}
	if updates == 0 {
		t.Fatal("streaming pass applied no updates")
	}
	m.Metric = CosineSimilarity
	if acc := m.Accuracy(test); acc < 0.65 {
		t.Fatalf("confidence-weighted streaming accuracy %.3f (chance 0.25)", acc)
	}
	// Margin path: a correctly-classified sample below the margin must
	// still report updated=true and move the class matrix. Predict (which
	// never updates) finds such a sample first; with Metric set to cosine
	// above, it agrees with AdaptOnline's cosine classification.
	for i := 0; i < train.Samples(); i++ {
		if m.Predict(train.X.Row(i)) != train.Y[i] {
			continue
		}
		before := append([]float32(nil), m.Classes.F32...)
		pred, upd := m.AdaptOnline(scratch, train.X.Row(i), train.Y[i], OnlineConfig{LearningRate: 0.001, Margin: 0.9999})
		if pred != train.Y[i] {
			t.Fatalf("sample %d: Predict and AdaptOnline disagree", i)
		}
		if !upd {
			t.Fatal("near-1 margin did not reinforce a correct sample")
		}
		changed := false
		for j, v := range m.Classes.F32 {
			if v != before[j] {
				changed = true
				break
			}
		}
		if !changed {
			t.Fatal("reinforcement left the class matrix untouched")
		}
		return
	}
	t.Fatal("no correctly-classified sample found to probe the margin path")
}

func TestAdaptPanicsOnBadLabel(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad label did not panic")
		}
	}()
	m.Adapt(make([]float32, 4), 5, 1)
}
