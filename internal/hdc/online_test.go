package hdc

import (
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func TestTrainOnlineSinglePassCompetitive(t *testing.T) {
	// One confidence-weighted pass must get within a few points of a
	// multi-epoch perceptron — the OnlineHD claim.
	train, test := synthTrainTest(t, 32, 1600, 5, 600)
	online, _, err := TrainOnline(train, 2048, 1, OnlineConfig{LearningRate: 1}, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := Train(train, nil, TrainConfig{Dim: 2048, Epochs: 10, LearningRate: 1, Nonlinear: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Online models have scaled class norms; evaluate with cosine.
	online.Metric = CosineSimilarity
	accOnline := online.Accuracy(test)
	accMulti := multi.Accuracy(test)
	if accOnline < accMulti-0.08 {
		t.Fatalf("single-pass accuracy %.3f too far below 10-epoch %.3f", accOnline, accMulti)
	}
}

func TestTrainOnlineExtraPassesHelp(t *testing.T) {
	train, test := synthTrainTest(t, 28, 1400, 6, 601)
	one, _, err := TrainOnline(train, 1024, 1, OnlineConfig{LearningRate: 1}, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	three, _, err := TrainOnline(train, 1024, 3, OnlineConfig{LearningRate: 1}, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	one.Metric = CosineSimilarity
	three.Metric = CosineSimilarity
	if three.Accuracy(test) < one.Accuracy(test)-0.03 {
		t.Fatalf("extra passes hurt: %.3f vs %.3f", three.Accuracy(test), one.Accuracy(test))
	}
}

func TestFitOnlineValidation(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 3)
	e := tensor.New(tensor.Float32, 2, 64)
	if _, err := m.FitOnline(e, []int{0}, OnlineConfig{}, rng.New(2)); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := m.FitOnline(e, []int{0, 9}, OnlineConfig{}, rng.New(2)); err == nil {
		t.Fatal("bad label accepted")
	}
	bad := tensor.New(tensor.Float32, 2, 32)
	if _, err := m.FitOnline(bad, []int{0, 1}, OnlineConfig{}, rng.New(2)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestFitOnlineConfidenceWeighting(t *testing.T) {
	// A confidently-classified sample must produce a smaller update than
	// a borderline one.
	enc := NewEncoder(2, 128, true, rng.New(9))
	m := NewModel(enc, 2)
	r := rng.New(10)
	proto := make([]float32, 128)
	r.FillNormal(proto)
	// Make class 1 strongly aligned with proto, class 0 its negation.
	copy(m.Classes.Row(1), proto)
	for j, v := range proto {
		m.Classes.Row(0)[j] = -v
	}
	encT := tensor.New(tensor.Float32, 1, 128)
	copy(encT.Row(0), proto)
	before := append([]float32(nil), m.Classes.Row(0)...)
	// Sample labelled 0 but maximally similar to class 1: a large
	// (1 − δ) misprediction update must fire.
	if _, err := m.FitOnline(encT, []int{0}, OnlineConfig{LearningRate: 1}, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	moved := 0.0
	for j := range before {
		d := float64(m.Classes.Row(0)[j] - before[j])
		moved += d * d
	}
	if moved == 0 {
		t.Fatal("misprediction produced no update")
	}
}

func TestAdaptStreamingImproves(t *testing.T) {
	train, test := synthTrainTest(t, 24, 1500, 4, 602)
	// Start with an untrained model and stream the training set through
	// Adapt once.
	r := rng.New(7)
	enc := NewEncoder(train.Features(), 1024, true, r)
	m := NewModel(enc, train.Classes)
	for i := 0; i < train.Samples(); i++ {
		m.Adapt(train.X.Row(i), train.Y[i], 1)
	}
	if acc := m.Accuracy(test); acc < 0.65 {
		t.Fatalf("streamed accuracy %.3f (chance 0.25)", acc)
	}
}

func TestAdaptReturnsUpdatedFlag(t *testing.T) {
	train, _ := synthTrainTest(t, 16, 400, 3, 603)
	enc := NewEncoder(train.Features(), 256, true, rng.New(8))
	m := NewModel(enc, train.Classes)
	// First sample on a zero model: argmax of zeros is class 0.
	pred, updated := m.Adapt(train.X.Row(0), train.Y[0], 1)
	if train.Y[0] != 0 {
		if !updated || pred == train.Y[0] {
			t.Fatalf("first adapt on zero model: pred %d, updated %v", pred, updated)
		}
	}
	// Re-presenting the same sample immediately must now be correct.
	pred2, updated2 := m.Adapt(train.X.Row(0), train.Y[0], 1)
	if pred2 != train.Y[0] && !updated2 {
		t.Fatal("second adapt neither correct nor updated")
	}
}

func TestAdaptPanicsOnBadLabel(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad label did not panic")
		}
	}()
	m.Adapt(make([]float32, 4), 5, 1)
}
