package hdc

import (
	"fmt"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Similarity selects the associative-search metric.
type Similarity uint8

const (
	// DotSimilarity is the paper's accelerator-friendly approximation of
	// cosine similarity: δ(E, C) = E · C.
	DotSimilarity Similarity = iota
	// CosineSimilarity normalizes by both vector norms.
	CosineSimilarity
)

// Model is a trained HDC classifier: an encoder plus k class hypervectors.
type Model struct {
	Encoder *Encoder
	// Classes holds the class hypervectors as a [k, d] matrix.
	Classes *tensor.Tensor
	// Metric selects the similarity used by Predict.
	Metric Similarity
}

// NewModel returns a model with zero-initialized class hypervectors, as
// the paper's training starts.
func NewModel(enc *Encoder, k int) *Model {
	if k < 2 {
		panic(fmt.Sprintf("hdc: need at least 2 classes, got %d", k))
	}
	return &Model{
		Encoder: enc,
		Classes: tensor.New(tensor.Float32, k, enc.Dim()),
	}
}

// K returns the class count.
func (m *Model) K() int { return m.Classes.Shape[0] }

// Dim returns the hypervector width.
func (m *Model) Dim() int { return m.Classes.Shape[1] }

// Scores writes the similarity of the encoded hypervector e against every
// class into scores (length K).
func (m *Model) Scores(scores, e []float32) {
	tensor.MatVec(scores, m.Classes, e)
	if m.Metric == CosineSimilarity {
		ne := tensor.Norm(e)
		if ne == 0 {
			return
		}
		for c := range scores {
			nc := tensor.Norm(m.Classes.Row(c))
			if nc > 0 {
				scores[c] /= ne * nc
			}
		}
	}
}

// ClassifyEncoded returns the class with the highest similarity to the
// already-encoded hypervector e.
func (m *Model) ClassifyEncoded(e []float32) int {
	scores := make([]float32, m.K())
	m.Scores(scores, e)
	return tensor.ArgMax(scores)
}

// Predict encodes the raw feature vector and classifies it.
func (m *Model) Predict(features []float32) int {
	e := make([]float32, m.Dim())
	m.Encoder.Encode(e, features)
	return m.ClassifyEncoded(e)
}

// PredictBatch classifies every row of an [s, n] design matrix.
func (m *Model) PredictBatch(x *tensor.Tensor) []int {
	enc := m.Encoder.EncodeBatch(x)
	return m.ClassifyEncodedBatch(enc)
}

// ClassifyEncodedBatch classifies every row of an [s, d] matrix of
// hypervectors.
func (m *Model) ClassifyEncodedBatch(enc *tensor.Tensor) []int {
	s := enc.Shape[0]
	out := make([]int, s)
	if m.Metric == DotSimilarity && s > 1 {
		// One blocked, parallel GEMM against the transposed class matrix
		// replaces s MatVec passes over Classes. Scores can differ from the
		// per-row path only in the sign of a zero (the GEMM skips zero
		// operands), which cannot change an ArgMax comparison.
		scores := tensor.New(tensor.Float32, s, m.K())
		tensor.MatMul(scores, enc, tensor.Transpose(m.Classes))
		for i := 0; i < s; i++ {
			out[i] = tensor.ArgMax(scores.Row(i))
		}
		return out
	}
	scores := make([]float32, m.K())
	for i := 0; i < s; i++ {
		m.Scores(scores, enc.Row(i))
		out[i] = tensor.ArgMax(scores)
	}
	return out
}

// Bundle adds λ·e into class c's hypervector.
func (m *Model) Bundle(c int, lambda float32, e []float32) {
	tensor.Axpy(lambda, e, m.Classes.Row(c))
}

// Detach subtracts λ·e from class c's hypervector.
func (m *Model) Detach(c int, lambda float32, e []float32) {
	tensor.Axpy(-lambda, e, m.Classes.Row(c))
}

// Clone returns a deep copy of the model (sharing no storage).
func (m *Model) Clone() *Model {
	return &Model{
		Encoder: &Encoder{Base: m.Encoder.Base.Clone(), Nonlinear: m.Encoder.Nonlinear},
		Classes: m.Classes.Clone(),
		Metric:  m.Metric,
	}
}

// CorruptClasses flips the sign of a uniformly-chosen fraction of the
// class-hypervector elements in place — a hardware-fault model (stuck or
// flipped memory cells) for studying HDC's graceful degradation. It
// returns the number of corrupted elements.
func (m *Model) CorruptClasses(fraction float64, r *rng.RNG) int {
	if fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := int(fraction * float64(len(m.Classes.F32)))
	for _, idx := range r.SampleWithoutReplacement(len(m.Classes.F32), n) {
		m.Classes.F32[idx] = -m.Classes.F32[idx]
	}
	return n
}
