package hdc

import (
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// noiseAugmented builds a dataset where only the first `signal` features
// carry class information; the rest are pure noise.
func noiseAugmented(t *testing.T, signal, noise, samples, classes int, seed uint64) *dataset.Dataset {
	t.Helper()
	base, err := dataset.Generate(dataset.SyntheticSpec(signal, samples, classes, seed), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1)
	x := tensor.New(tensor.Float32, samples, signal+noise)
	for i := 0; i < samples; i++ {
		copy(x.Row(i)[:signal], base.X.Row(i))
		for j := signal; j < signal+noise; j++ {
			x.Row(i)[j] = float32(r.NormFloat64())
		}
	}
	return &dataset.Dataset{Name: "augmented", Classes: classes, X: x, Y: base.Y}
}

func TestExplainConcentratesOnSignalFeatures(t *testing.T) {
	const signal, noise = 16, 48
	ds := noiseAugmented(t, signal, noise, 1600, 4, 950)
	m, _, err := Train(ds, nil, TrainConfig{Dim: 2048, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	signalSet := map[int]bool{}
	for i := 0; i < signal; i++ {
		signalSet[i] = true
	}
	// Averaged over samples, attribution mass must concentrate on the
	// 16 informative features well beyond their 25% count share. (The
	// trained class hypervectors also absorb some noise-feature
	// contributions from the training samples, so concentration is
	// roughly 2x the count share rather than total.)
	var mass float64
	const probes = 50
	for i := 0; i < probes; i++ {
		_, attrs := m.Explain(ds.X.Row(i))
		mass += SaliencyMass(attrs, signalSet)
	}
	mass /= probes
	if mass < 0.4 {
		t.Fatalf("signal features carry only %.2f of attribution (share by count: 0.25)", mass)
	}
}

func TestExplainReturnsPrediction(t *testing.T) {
	ds, err := dataset.Generate(dataset.SyntheticSpec(20, 800, 3, 951), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Train(ds, nil, TrainConfig{Dim: 1024, Epochs: 5, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		pred, attrs := m.Explain(ds.X.Row(i))
		if pred != m.Predict(ds.X.Row(i)) {
			t.Fatalf("Explain prediction %d differs from Predict", pred)
		}
		if len(attrs) != ds.Features() {
			t.Fatalf("%d attributions", len(attrs))
		}
		// Sorted by |score|.
		for j := 1; j < len(attrs); j++ {
			a, b := attrs[j-1].Score, attrs[j].Score
			if a < 0 {
				a = -a
			}
			if b < 0 {
				b = -b
			}
			if b > a {
				t.Fatal("attributions not sorted")
			}
		}
	}
}

func TestExplainPanicsOnBadLength(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Explain(make([]float32, 3))
}

func TestSaliencyMassEdge(t *testing.T) {
	if SaliencyMass(nil, nil) != 0 {
		t.Fatal("empty mass nonzero")
	}
	attrs := []Attribution{{Feature: 0, Score: 2}, {Feature: 1, Score: -2}}
	if m := SaliencyMass(attrs, map[int]bool{0: true}); m != 0.5 {
		t.Fatalf("mass %v", m)
	}
}
