package hdc

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hdcedge/internal/tensor"
)

// saveTestModel builds a small deterministic model worth roundtripping.
func saveTestModel() *Model {
	base := tensor.New(tensor.Float32, 5, 16)
	for i := range base.F32 {
		base.F32[i] = float32(i%7) - 3
	}
	classes := tensor.New(tensor.Float32, 3, 16)
	for i := range classes.F32 {
		classes.F32[i] = float32(i%5) * 0.25
	}
	return &Model{
		Encoder: &Encoder{Base: base, Nonlinear: true},
		Classes: classes,
		Metric:  Similarity(1),
	}
}

func TestSaveLoadRoundtripWithFooter(t *testing.T) {
	m := saveTestModel()
	path := filepath.Join(t.TempDir(), "m.hdm")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < crcFooterLen || string(raw[len(raw)-crcFooterLen:len(raw)-4]) != crcMagic {
		t.Fatalf("saved file lacks the %q integrity footer", crcMagic)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoder.Features() != 5 || got.Dim() != 16 || got.K() != 3 ||
		!got.Encoder.Nonlinear || got.Metric != m.Metric {
		t.Fatalf("roundtrip lost shape or flags: %+v", got)
	}
	for i, v := range m.Encoder.Base.F32 {
		if got.Encoder.Base.F32[i] != v {
			t.Fatalf("base[%d] = %g, want %g", i, got.Encoder.Base.F32[i], v)
		}
	}
	for i, v := range m.Classes.F32 {
		if got.Classes.F32[i] != v {
			t.Fatalf("classes[%d] = %g, want %g", i, got.Classes.F32[i], v)
		}
	}
}

// TestLoadModelDetectsCorruption flips one payload byte in a sealed file
// and expects the typed checksum error naming both sides of the mismatch.
func TestLoadModelDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.hdm")
	if err := saveTestModel().Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10 // one bit, mid-payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadModel(path)
	if err == nil {
		t.Fatal("corrupted model loaded cleanly")
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T) is not a *ChecksumError", err, err)
	}
	if ce.Path != path || ce.Want == ce.Got {
		t.Fatalf("checksum error underspecified: %+v", ce)
	}
}

// TestLoadModelAcceptsLegacyBlob strips the footer, reproducing a file
// written before the checksum existed; it must still load.
func TestLoadModelAcceptsLegacyBlob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.hdm")
	if err := saveTestModel().Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(t.TempDir(), "legacy.hdm")
	if err := os.WriteFile(legacy, raw[:len(raw)-crcFooterLen], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(legacy)
	if err != nil {
		t.Fatalf("legacy footerless model rejected: %v", err)
	}
	if got.Dim() != 16 || got.K() != 3 {
		t.Fatalf("legacy load lost shape: %+v", got)
	}

	// A corrupt legacy blob is undetectable by checksum — but corrupting a
	// sealed file's *footer* must still fail (the payload no longer matches).
	sealedBad := filepath.Join(t.TempDir(), "badfooter.hdm")
	raw2 := append([]byte(nil), raw...)
	raw2[len(raw2)-1] ^= 0xFF
	if err := os.WriteFile(sealedBad, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *ChecksumError
	if _, err := LoadModel(sealedBad); !errors.As(err, &ce) {
		t.Fatalf("footer corruption yielded %v, want *ChecksumError", err)
	}
}

// TestLoadModelRejectsTrailingGarbage: extra bytes between the model and
// the footer (or after a legacy blob) are an error, not silently ignored.
func TestLoadModelRejectsTrailingGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.hdm")
	if err := saveTestModel().Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := raw[:len(raw)-crcFooterLen]
	padded := filepath.Join(t.TempDir(), "padded.hdm")
	if err := os.WriteFile(padded, append(append([]byte(nil), legacy...), 0xAB, 0xCD), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(padded); err == nil {
		t.Fatal("trailing garbage loaded cleanly")
	}

	truncated := filepath.Join(t.TempDir(), "trunc.hdm")
	if err := os.WriteFile(truncated, legacy[:len(legacy)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(truncated); err == nil {
		t.Fatal("truncated model loaded cleanly")
	}
}
