package hdc

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// TrainConfig controls classifier training.
type TrainConfig struct {
	// Dim is the hypervector width d (DefaultDim when zero).
	Dim int
	// Epochs is the number of passes over the training set (the paper
	// trains 20 for fully-trained models, 6 under bagging).
	Epochs int
	// LearningRate is λ in the bundling/detaching updates (1 when zero).
	LearningRate float32
	// Nonlinear selects tanh encoding (the paper's choice). NOTE: the
	// zero value selects the linear-encoding ablation.
	Nonlinear bool
	// Seed drives base-hypervector generation and epoch shuffling.
	Seed uint64
}

// DefaultTrainConfig returns the paper's fully-trained-model settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: DefaultDim, Epochs: 20, LearningRate: 1, Nonlinear: true, Seed: 1}
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Dim == 0 {
		c.Dim = DefaultDim
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1
	}
	return c
}

// EpochStats records one training epoch's outcome.
type EpochStats struct {
	Epoch int
	// Updates is the number of class-matrix updates applied. Under the
	// perceptron rule every update is a misprediction's bundling+detaching
	// pair; the online rule additionally counts margin reinforcements of
	// correct predictions. The co-design runtime model uses it to price
	// the host-CPU update phase.
	Updates int
	// Mispredictions is the number of samples the pre-update model got
	// wrong during the pass. It never exceeds Updates; the two differ only
	// when a margin reinforces already-correct samples.
	Mispredictions int
	// TrainAccuracy is the online accuracy during the pass:
	// 1 − Mispredictions/samples.
	TrainAccuracy float64
	// ValidationAccuracy is measured after the pass when a validation
	// set is supplied (NaN-free: zero when absent).
	ValidationAccuracy float64
}

// TrainStats aggregates training progress (the data behind Fig 4).
type TrainStats struct {
	Epochs []EpochStats
}

// TotalUpdates sums class-matrix updates across epochs.
func (s *TrainStats) TotalUpdates() int {
	total := 0
	for _, e := range s.Epochs {
		total += e.Updates
	}
	return total
}

// TotalMispredictions sums pre-update misses across epochs.
func (s *TrainStats) TotalMispredictions() int {
	total := 0
	for _, e := range s.Epochs {
		total += e.Mispredictions
	}
	return total
}

// Train builds and trains a model on train, optionally tracking accuracy
// on val after each epoch.
func Train(train, val *dataset.Dataset, cfg TrainConfig) (*Model, *TrainStats, error) {
	cfg = cfg.withDefaults()
	if train == nil || train.Samples() == 0 {
		return nil, nil, fmt.Errorf("hdc: empty training set")
	}
	r := rng.New(cfg.Seed)
	enc := NewEncoder(train.Features(), cfg.Dim, cfg.Nonlinear, r.Split())
	model := NewModel(enc, train.Classes)

	encoded := enc.EncodeBatch(train.X)
	var valEncoded *tensor.Tensor
	if val != nil && val.Samples() > 0 {
		valEncoded = enc.EncodeBatch(val.X)
	}
	stats, err := model.FitEncoded(encoded, train.Y, valEncoded, valLabels(val), cfg.Epochs, cfg.LearningRate, r.Split())
	if err != nil {
		return nil, nil, err
	}
	return model, stats, nil
}

func valLabels(val *dataset.Dataset) []int {
	if val == nil {
		return nil
	}
	return val.Y
}

// FitEncoded trains the class hypervectors on pre-encoded data. This is
// the host-CPU phase of the co-design pipeline: encoding may have happened
// on the accelerator, but bundling/detaching always runs here.
func (m *Model) FitEncoded(enc *tensor.Tensor, y []int, valEnc *tensor.Tensor, valY []int,
	epochs int, lr float32, r *rng.RNG) (*TrainStats, error) {
	s := enc.Shape[0]
	if s != len(y) {
		return nil, fmt.Errorf("hdc: %d encoded samples, %d labels", s, len(y))
	}
	if enc.Shape[1] != m.Dim() {
		return nil, fmt.Errorf("hdc: encoded width %d, model dim %d", enc.Shape[1], m.Dim())
	}
	for _, label := range y {
		if label < 0 || label >= m.K() {
			return nil, fmt.Errorf("hdc: label %d out of range [0,%d)", label, m.K())
		}
	}
	return fitClassesHook(m.Classes, enc, y, epochs, lr, r, func(es *EpochStats) {
		if valEnc != nil {
			es.ValidationAccuracy = accuracyEncoded(m, valEnc, valY)
		}
	})
}

// fitClasses runs the perceptron-style class-hypervector training loop on
// a raw [k, d] class matrix. It is shared by the projection model, the
// record-based model, and any other encoder producing [s, d] hypervectors.
func fitClasses(classes, enc *tensor.Tensor, y []int, epochs int, lr float32, r *rng.RNG) (*TrainStats, error) {
	return fitClassesHook(classes, enc, y, epochs, lr, r, nil)
}

// fitClassesHook is fitClasses with a per-epoch callback (used to track
// validation accuracy).
func fitClassesHook(classes, enc *tensor.Tensor, y []int, epochs int, lr float32,
	r *rng.RNG, hook func(*EpochStats)) (*TrainStats, error) {
	s := enc.Shape[0]
	k := classes.Shape[0]
	stats := &TrainStats{}
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	scores := make([]float32, k)
	for epoch := 0; epoch < epochs; epoch++ {
		r.Shuffle(s, func(a, b int) { order[a], order[b] = order[b], order[a] })
		updates := 0
		for _, idx := range order {
			e := enc.Row(idx)
			tensor.MatVec(scores, classes, e)
			pred := tensor.ArgMax(scores)
			if pred != y[idx] {
				tensor.Axpy(lr, e, classes.Row(y[idx]))
				tensor.Axpy(-lr, e, classes.Row(pred))
				updates++
			}
		}
		es := EpochStats{
			Epoch:          epoch,
			Updates:        updates,
			Mispredictions: updates, // perceptron rule: every update is a miss
			TrainAccuracy:  1 - float64(updates)/float64(s),
		}
		if hook != nil {
			hook(&es)
		}
		stats.Epochs = append(stats.Epochs, es)
	}
	return stats, nil
}

func accuracyEncoded(m *Model, enc *tensor.Tensor, y []int) float64 {
	preds := m.ClassifyEncodedBatch(enc)
	correct := 0
	for i, p := range preds {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// Accuracy evaluates the model on a labelled dataset.
func (m *Model) Accuracy(ds *dataset.Dataset) float64 {
	preds := m.PredictBatch(ds.X)
	correct := 0
	for i, p := range preds {
		if p == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Samples())
}
