package hdc

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file implements the single-pass, confidence-weighted training rule
// of OnlineHD (Hernandez-Cane et al., DAC 2021 — reference [17] of the
// paper), which the paper's introduction positions as the
// frequent-model-update workload that motivates training at the edge.
// Updates are scaled by (1 − similarity): confidently-correct samples
// barely move the model, borderline ones move it a lot, so one pass over
// the data approaches the quality of several perceptron epochs.

// OnlineConfig controls single-pass adaptive training.
type OnlineConfig struct {
	// LearningRate is the base step size (1 when zero).
	LearningRate float32
	// Margin updates even correctly-classified samples whose normalized
	// similarity falls below it (0 disables reinforcement of correct
	// predictions).
	Margin float32
}

// FitOnline performs one confidence-weighted pass over pre-encoded
// samples. It uses cosine-normalized similarities so the (1 − δ) weights
// are scale-free.
func (m *Model) FitOnline(enc *tensor.Tensor, y []int, cfg OnlineConfig, r *rng.RNG) (*TrainStats, error) {
	s := enc.Shape[0]
	if s != len(y) {
		return nil, fmt.Errorf("hdc: %d encoded samples, %d labels", s, len(y))
	}
	if enc.Shape[1] != m.Dim() {
		return nil, fmt.Errorf("hdc: encoded width %d, model dim %d", enc.Shape[1], m.Dim())
	}
	for _, label := range y {
		if label < 0 || label >= m.K() {
			return nil, fmt.Errorf("hdc: label %d out of range [0,%d)", label, m.K())
		}
	}
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 1
	}
	order := r.Perm(s)
	scores := make([]float32, m.K())
	updates, mispred := 0, 0
	for _, idx := range order {
		e := enc.Row(idx)
		m.cosineScores(scores, e)
		pred := tensor.ArgMax(scores)
		truth := y[idx]
		if pred != truth {
			m.Bundle(truth, lr*(1-scores[truth]), e)
			m.Detach(pred, lr*(1-scores[pred]), e)
			updates++
			mispred++
		} else if cfg.Margin > 0 && scores[truth] < cfg.Margin {
			// A margin reinforcement touches the class matrix but the
			// prediction was correct — it counts as an update, not a miss.
			m.Bundle(truth, lr*(cfg.Margin-scores[truth]), e)
			updates++
		}
	}
	return &TrainStats{Epochs: []EpochStats{{
		Epoch:          0,
		Updates:        updates,
		Mispredictions: mispred,
		TrainAccuracy:  1 - float64(mispred)/float64(s),
	}}}, nil
}

// cosineScores fills scores with cosine similarities regardless of the
// model's configured inference metric.
func (m *Model) cosineScores(scores, e []float32) {
	tensor.MatVec(scores, m.Classes, e)
	ne := tensor.Norm(e)
	if ne == 0 {
		return
	}
	for c := range scores {
		nc := tensor.Norm(m.Classes.Row(c))
		if nc > 0 {
			scores[c] /= ne * nc
		} else {
			scores[c] = 0
		}
	}
}

// TrainOnline builds a model and trains it with one confidence-weighted
// pass (plus optional extra refinement passes).
func TrainOnline(train *dataset.Dataset, dim int, passes int, cfg OnlineConfig, nonlinear bool, seed uint64) (*Model, *TrainStats, error) {
	if train == nil || train.Samples() == 0 {
		return nil, nil, fmt.Errorf("hdc: empty training set")
	}
	if passes < 1 {
		passes = 1
	}
	r := rng.New(seed)
	enc := NewEncoder(train.Features(), dim, nonlinear, r.Split())
	model := NewModel(enc, train.Classes)
	encoded := enc.EncodeBatch(train.X)
	all := &TrainStats{}
	for p := 0; p < passes; p++ {
		stats, err := model.FitOnline(encoded, train.Y, cfg, r.Split())
		if err != nil {
			return nil, nil, err
		}
		es := stats.Epochs[0]
		es.Epoch = p
		all.Epochs = append(all.Epochs, es)
	}
	return model, all, nil
}

// AdaptScratch holds the encode and score buffers a streaming update loop
// reuses across samples, keeping the hot path allocation-free (the same
// zero-alloc discipline the binhd invoke path follows).
type AdaptScratch struct {
	e      []float32
	scores []float32
}

// NewAdaptScratch sizes scratch buffers for this model's width and class
// count.
func (m *Model) NewAdaptScratch() *AdaptScratch {
	return &AdaptScratch{
		e:      make([]float32, m.Dim()),
		scores: make([]float32, m.K()),
	}
}

// Adapt applies one streaming update: the sample is encoded, classified,
// and on a misprediction the class hypervectors are corrected with rate
// lr. It returns the prediction made before the update. This is the
// "frequent model update" primitive of the paper's IoT motivation.
// Callers on a hot path should reuse scratch via AdaptWith; this wrapper
// allocates fresh buffers per call.
func (m *Model) Adapt(features []float32, label int, lr float32) (pred int, updated bool) {
	return m.AdaptWith(m.NewAdaptScratch(), features, label, lr)
}

// AdaptWith is Adapt against caller-owned scratch: with one AdaptScratch
// reused across samples the streaming path performs zero heap allocations.
func (m *Model) AdaptWith(s *AdaptScratch, features []float32, label int, lr float32) (pred int, updated bool) {
	if label < 0 || label >= m.K() {
		panic(fmt.Sprintf("hdc: Adapt label %d out of range [0,%d)", label, m.K()))
	}
	m.Encoder.Encode(s.e, features)
	m.Scores(s.scores, s.e)
	pred = tensor.ArgMax(s.scores)
	if pred != label {
		m.Bundle(label, lr, s.e)
		m.Detach(pred, lr, s.e)
		return pred, true
	}
	return pred, false
}

// AdaptOnline applies one confidence-weighted streaming update — the
// FitOnline rule on a single sample: cosine-normalized similarities scale
// the correction by (1 − δ), and a positive Margin also reinforces
// correct-but-weak predictions. It reuses caller-owned scratch and returns
// the prediction made before any update.
func (m *Model) AdaptOnline(s *AdaptScratch, features []float32, label int, cfg OnlineConfig) (pred int, updated bool) {
	if label < 0 || label >= m.K() {
		panic(fmt.Sprintf("hdc: AdaptOnline label %d out of range [0,%d)", label, m.K()))
	}
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 1
	}
	m.Encoder.Encode(s.e, features)
	m.cosineScores(s.scores, s.e)
	pred = tensor.ArgMax(s.scores)
	if pred != label {
		m.Bundle(label, lr*(1-s.scores[label]), s.e)
		m.Detach(pred, lr*(1-s.scores[pred]), s.e)
		return pred, true
	}
	if cfg.Margin > 0 && s.scores[label] < cfg.Margin {
		m.Bundle(label, lr*(cfg.Margin-s.scores[label]), s.e)
		return pred, true
	}
	return pred, false
}
