package hdc

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file implements the single-pass, confidence-weighted training rule
// of OnlineHD (Hernandez-Cane et al., DAC 2021 — reference [17] of the
// paper), which the paper's introduction positions as the
// frequent-model-update workload that motivates training at the edge.
// Updates are scaled by (1 − similarity): confidently-correct samples
// barely move the model, borderline ones move it a lot, so one pass over
// the data approaches the quality of several perceptron epochs.

// OnlineConfig controls single-pass adaptive training.
type OnlineConfig struct {
	// LearningRate is the base step size (1 when zero).
	LearningRate float32
	// Margin updates even correctly-classified samples whose normalized
	// similarity falls below it (0 disables reinforcement of correct
	// predictions).
	Margin float32
}

// FitOnline performs one confidence-weighted pass over pre-encoded
// samples. It uses cosine-normalized similarities so the (1 − δ) weights
// are scale-free.
func (m *Model) FitOnline(enc *tensor.Tensor, y []int, cfg OnlineConfig, r *rng.RNG) (*TrainStats, error) {
	s := enc.Shape[0]
	if s != len(y) {
		return nil, fmt.Errorf("hdc: %d encoded samples, %d labels", s, len(y))
	}
	if enc.Shape[1] != m.Dim() {
		return nil, fmt.Errorf("hdc: encoded width %d, model dim %d", enc.Shape[1], m.Dim())
	}
	for _, label := range y {
		if label < 0 || label >= m.K() {
			return nil, fmt.Errorf("hdc: label %d out of range [0,%d)", label, m.K())
		}
	}
	lr := cfg.LearningRate
	if lr == 0 {
		lr = 1
	}
	order := r.Perm(s)
	scores := make([]float32, m.K())
	updates := 0
	for _, idx := range order {
		e := enc.Row(idx)
		m.cosineScores(scores, e)
		pred := tensor.ArgMax(scores)
		truth := y[idx]
		if pred != truth {
			m.Bundle(truth, lr*(1-scores[truth]), e)
			m.Detach(pred, lr*(1-scores[pred]), e)
			updates++
		} else if cfg.Margin > 0 && scores[truth] < cfg.Margin {
			m.Bundle(truth, lr*(cfg.Margin-scores[truth]), e)
			updates++
		}
	}
	return &TrainStats{Epochs: []EpochStats{{
		Epoch:         0,
		Updates:       updates,
		TrainAccuracy: 1 - float64(updates)/float64(s),
	}}}, nil
}

// cosineScores fills scores with cosine similarities regardless of the
// model's configured inference metric.
func (m *Model) cosineScores(scores, e []float32) {
	tensor.MatVec(scores, m.Classes, e)
	ne := tensor.Norm(e)
	if ne == 0 {
		return
	}
	for c := range scores {
		nc := tensor.Norm(m.Classes.Row(c))
		if nc > 0 {
			scores[c] /= ne * nc
		} else {
			scores[c] = 0
		}
	}
}

// TrainOnline builds a model and trains it with one confidence-weighted
// pass (plus optional extra refinement passes).
func TrainOnline(train *dataset.Dataset, dim int, passes int, cfg OnlineConfig, nonlinear bool, seed uint64) (*Model, *TrainStats, error) {
	if train == nil || train.Samples() == 0 {
		return nil, nil, fmt.Errorf("hdc: empty training set")
	}
	if passes < 1 {
		passes = 1
	}
	r := rng.New(seed)
	enc := NewEncoder(train.Features(), dim, nonlinear, r.Split())
	model := NewModel(enc, train.Classes)
	encoded := enc.EncodeBatch(train.X)
	all := &TrainStats{}
	for p := 0; p < passes; p++ {
		stats, err := model.FitOnline(encoded, train.Y, cfg, r.Split())
		if err != nil {
			return nil, nil, err
		}
		es := stats.Epochs[0]
		es.Epoch = p
		all.Epochs = append(all.Epochs, es)
	}
	return model, all, nil
}

// Adapt applies one streaming update: the sample is encoded, classified,
// and on a misprediction the class hypervectors are corrected with rate
// lr. It returns the prediction made before the update. This is the
// "frequent model update" primitive of the paper's IoT motivation.
func (m *Model) Adapt(features []float32, label int, lr float32) (pred int, updated bool) {
	if label < 0 || label >= m.K() {
		panic(fmt.Sprintf("hdc: Adapt label %d out of range [0,%d)", label, m.K()))
	}
	e := make([]float32, m.Dim())
	m.Encoder.Encode(e, features)
	pred = m.ClassifyEncoded(e)
	if pred != label {
		m.Bundle(label, lr, e)
		m.Detach(pred, lr, e)
		return pred, true
	}
	return pred, false
}
