// Package hdc implements the hyperdimensional-computing classifier the
// paper accelerates: non-linear random-projection encoding into
// d-dimensional hypervectors, perceptron-style class-hypervector training
// (bundling and detaching on mispredictions), and associative-search
// classification by dot-product similarity.
//
// The package is the CPU-baseline implementation; internal/nnmap converts
// its models into the hyper-wide neural networks that internal/edgetpu
// accelerates.
package hdc

import (
	"fmt"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// DefaultDim is the hypervector width d used throughout the paper.
const DefaultDim = 10000

// Encoder maps n-feature inputs into d-dimensional hypervectors:
//
//	E = tanh(f₁·B₁ + f₂·B₂ + … + fₙ·Bₙ)
//
// where each base hypervector Bᵢ has i.i.d. N(0,1) components, making the
// bases near-orthogonal in high dimension. With Nonlinear disabled the
// tanh is skipped (the linear-encoding baseline of prior work).
type Encoder struct {
	// Base holds the base hypervectors as an [n, d] matrix: row i is Bᵢ.
	Base *tensor.Tensor
	// Nonlinear applies the tanh activation after bundling.
	Nonlinear bool
}

// NewEncoder draws base hypervectors for nFeatures inputs at width dim
// from r.
func NewEncoder(nFeatures, dim int, nonlinear bool, r *rng.RNG) *Encoder {
	if nFeatures <= 0 || dim <= 0 {
		panic(fmt.Sprintf("hdc: invalid encoder dims %d×%d", nFeatures, dim))
	}
	base := tensor.New(tensor.Float32, nFeatures, dim)
	r.FillNormal(base.F32)
	return &Encoder{Base: base, Nonlinear: nonlinear}
}

// Features returns the input dimensionality n.
func (e *Encoder) Features() int { return e.Base.Shape[0] }

// Dim returns the hypervector width d.
func (e *Encoder) Dim() int { return e.Base.Shape[1] }

// Encode writes the hypervector for one feature vector into dst
// (length Dim).
func (e *Encoder) Encode(dst, features []float32) {
	tensor.VecMat(dst, features, e.Base)
	if e.Nonlinear {
		tensor.TanhSlice(dst)
	}
}

// EncodeBatch encodes an [s, n] design matrix into an [s, d] matrix of
// hypervectors.
func (e *Encoder) EncodeBatch(x *tensor.Tensor) *tensor.Tensor {
	if x.DType != tensor.Float32 || len(x.Shape) != 2 || x.Shape[1] != e.Features() {
		panic(fmt.Sprintf("hdc: EncodeBatch input %v, want [*, %d] float", x.Shape, e.Features()))
	}
	out := tensor.New(tensor.Float32, x.Shape[0], e.Dim())
	tensor.MatMul(out, x, e.Base)
	if e.Nonlinear {
		tensor.TanhSlice(out.F32)
	}
	return out
}

// MaskFeatures zeroes the base hypervectors of every feature not present
// in keep, implementing bagging's feature sampling: a masked feature
// contributes nothing to any encoding. It returns the encoder for
// chaining.
func (e *Encoder) MaskFeatures(keep []bool) *Encoder {
	if len(keep) != e.Features() {
		panic(fmt.Sprintf("hdc: mask length %d, want %d", len(keep), e.Features()))
	}
	d := e.Dim()
	for i, k := range keep {
		if k {
			continue
		}
		row := e.Base.F32[i*d : (i+1)*d]
		for j := range row {
			row[j] = 0
		}
	}
	return e
}
