package hdc

import (
	"fmt"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file implements HDC clustering in the style the paper's reference
// [30] (DUAL, MICRO 2020) accelerates: k-means in the hyperdimensional
// space. Samples are encoded once; centroids are hypervectors updated by
// bundling their assigned members; assignment uses cosine similarity,
// which in HD space behaves like a well-conditioned distance.

// ClusterConfig controls HD k-means.
type ClusterConfig struct {
	K             int
	Dim           int
	MaxIterations int
	Nonlinear     bool
	Seed          uint64
}

// ClusterResult holds the outcome.
type ClusterResult struct {
	Encoder *Encoder
	// Centroids is the [K, d] matrix of cluster hypervectors.
	Centroids *tensor.Tensor
	// Assignments maps each input row to its cluster.
	Assignments []int
	// Iterations actually run before convergence.
	Iterations int
}

// Cluster runs HD k-means over the rows of x.
func Cluster(x *tensor.Tensor, cfg ClusterConfig) (*ClusterResult, error) {
	if x == nil || x.DType != tensor.Float32 || len(x.Shape) != 2 {
		return nil, fmt.Errorf("hdc: clustering needs a 2-D float design matrix")
	}
	s := x.Shape[0]
	if cfg.K < 2 || cfg.K > s {
		return nil, fmt.Errorf("hdc: cluster count %d outside [2, %d]", cfg.K, s)
	}
	if cfg.Dim == 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 32
	}
	r := rng.New(cfg.Seed)
	enc := NewEncoder(x.Shape[1], cfg.Dim, cfg.Nonlinear, r.Split())
	encoded := enc.EncodeBatch(x)

	res := &ClusterResult{
		Encoder:     enc,
		Centroids:   tensor.New(tensor.Float32, cfg.K, cfg.Dim),
		Assignments: make([]int, s),
	}
	// Initialize centroids from distinct random samples.
	for c, idx := range r.SampleWithoutReplacement(s, cfg.K) {
		copy(res.Centroids.Row(c), encoded.Row(idx))
	}

	norms := make([]float32, cfg.K)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		for c := 0; c < cfg.K; c++ {
			norms[c] = tensor.Norm(res.Centroids.Row(c))
		}
		changed := 0
		for i := 0; i < s; i++ {
			e := encoded.Row(i)
			best, bestSim := 0, float32(-2)
			for c := 0; c < cfg.K; c++ {
				sim := tensor.Dot(e, res.Centroids.Row(c))
				if norms[c] > 0 {
					sim /= norms[c]
				}
				if sim > bestSim {
					best, bestSim = c, sim
				}
			}
			if res.Assignments[i] != best || iter == 0 {
				if res.Assignments[i] != best {
					changed++
				}
				res.Assignments[i] = best
			}
		}
		res.Iterations = iter + 1
		if iter > 0 && changed == 0 {
			break
		}
		// Rebuild centroids by bundling members; empty clusters re-seed
		// from a random sample.
		counts := make([]int, cfg.K)
		next := tensor.New(tensor.Float32, cfg.K, cfg.Dim)
		for i := 0; i < s; i++ {
			c := res.Assignments[i]
			counts[c]++
			tensor.Axpy(1, encoded.Row(i), next.Row(c))
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				copy(next.Row(c), encoded.Row(r.Intn(s)))
			}
		}
		res.Centroids = next
	}
	return res, nil
}

// Purity scores a clustering against ground-truth labels: for each
// cluster, the fraction of members sharing its majority label, weighted
// by cluster size. 1.0 means every cluster is label-pure.
func (res *ClusterResult) Purity(labels []int, numLabels int) float64 {
	if len(labels) != len(res.Assignments) {
		panic(fmt.Sprintf("hdc: %d labels for %d assignments", len(labels), len(res.Assignments)))
	}
	k := res.Centroids.Shape[0]
	counts := make([][]int, k)
	for c := range counts {
		counts[c] = make([]int, numLabels)
	}
	for i, c := range res.Assignments {
		if labels[i] >= 0 && labels[i] < numLabels {
			counts[c][labels[i]]++
		}
	}
	majority := 0
	for c := range counts {
		best := 0
		for _, n := range counts[c] {
			if n > best {
				best = n
			}
		}
		majority += best
	}
	return float64(majority) / float64(len(labels))
}
