package hdc

import (
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func benchData(b *testing.B, features, samples, classes int) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(features, samples, classes, 1), 0)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkEncodeSingle(b *testing.B) {
	enc := NewEncoder(617, 10000, true, rng.New(1))
	f := make([]float32, 617)
	rng.New(2).FillNormal(f)
	dst := make([]float32, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(dst, f)
	}
}

func BenchmarkEncodeBatch32(b *testing.B) {
	enc := NewEncoder(617, 2000, true, rng.New(3))
	x := tensor.New(tensor.Float32, 32, 617)
	rng.New(4).FillNormal(x.F32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeBatch(x)
	}
}

func BenchmarkFitEncodedEpoch(b *testing.B) {
	ds := benchData(b, 40, 1000, 8)
	enc := NewEncoder(40, 2000, true, rng.New(5))
	encoded := enc.EncodeBatch(ds.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewModel(enc, ds.Classes)
		if _, err := m.FitEncoded(encoded, ds.Y, nil, nil, 1, 1, rng.New(6)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictFloat(b *testing.B) {
	ds := benchData(b, 40, 1200, 8)
	m, _, err := Train(ds, nil, TrainConfig{Dim: 2000, Epochs: 3, LearningRate: 1, Nonlinear: true, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	f := ds.X.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(f)
	}
}

func BenchmarkPredictBipolar(b *testing.B) {
	ds := benchData(b, 40, 1200, 8)
	m, _, err := Train(ds, nil, TrainConfig{Dim: 2000, Epochs: 3, LearningRate: 1, Nonlinear: true, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	bm := m.Binarize()
	f := ds.X.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Predict(f)
	}
}

func BenchmarkHammingSearch(b *testing.B) {
	// Pure associative search over packed hypervectors, the
	// microcontroller-class inner loop.
	enc := NewEncoder(8, 10000, true, rng.New(8))
	m := NewModel(enc, 26)
	r := rng.New(9)
	for c := 0; c < 26; c++ {
		r.FillNormal(m.Classes.Row(c))
	}
	bm := m.Binarize()
	query := make([]float32, 10000)
	r.FillNormal(query)
	packed := packSigns(query)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.ClassifyPacked(packed)
	}
}

func BenchmarkAdaptStreaming(b *testing.B) {
	ds := benchData(b, 40, 1000, 8)
	enc := NewEncoder(40, 2000, true, rng.New(10))
	m := NewModel(enc, ds.Classes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % ds.Samples()
		m.Adapt(ds.X.Row(idx), ds.Y[idx], 1)
	}
}
