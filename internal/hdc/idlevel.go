package hdc

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file implements the classic record-based (ID–level) HDC encoding
// that most prior work used before non-linear random projection (VoiceHD
// and the linear-mapping line the paper contrasts against in §III-A):
// each feature position gets a random bipolar ID hypervector, each
// quantized feature magnitude gets a level hypervector from a correlated
// chain, and a sample encodes as
//
//	E = Σ_i  ID_i ⊙ L(q(f_i))
//
// where ⊙ is element-wise binding. The encoding exists here as a
// comparison substrate: it cannot be expressed as a fully-connected layer
// (binding is element-wise and the level lookup is a gather), so unlike
// the paper's projection encoder it has no hyper-wide-NN form and cannot
// be delegated to the Edge TPU — which is precisely the
// algorithm-hardware co-design argument for the projection encoder.

// LevelEncoder is a record-based HDC encoder.
type LevelEncoder struct {
	// IDs holds one bipolar (±1) hypervector per feature, [n, d].
	IDs *tensor.Tensor
	// Levels holds the correlated level chain, [L, d]: adjacent rows
	// differ in a fixed number of flipped positions so nearby magnitudes
	// encode to similar hypervectors.
	Levels *tensor.Tensor
	// Lo and Hi bound the quantization range; values outside clamp.
	Lo, Hi float32
}

// NewLevelEncoder draws ID hypervectors and a level chain with `levels`
// steps over [lo, hi].
func NewLevelEncoder(nFeatures, dim, levels int, lo, hi float32, r *rng.RNG) *LevelEncoder {
	if nFeatures <= 0 || dim <= 0 || levels < 2 || hi <= lo {
		panic(fmt.Sprintf("hdc: invalid level encoder (n=%d d=%d L=%d range [%v,%v])",
			nFeatures, dim, levels, lo, hi))
	}
	ids := tensor.New(tensor.Float32, nFeatures, dim)
	for i := range ids.F32 {
		if r.Uint64()&1 == 1 {
			ids.F32[i] = 1
		} else {
			ids.F32[i] = -1
		}
	}
	lv := tensor.New(tensor.Float32, levels, dim)
	// First level: random bipolar. Each subsequent level flips
	// d/(2(L-1)) fresh positions, so level 0 and level L-1 are
	// near-orthogonal while neighbors stay highly similar.
	row0 := lv.Row(0)
	for j := range row0 {
		if r.Uint64()&1 == 1 {
			row0[j] = 1
		} else {
			row0[j] = -1
		}
	}
	flipsPerStep := dim / (2 * (levels - 1))
	if flipsPerStep < 1 {
		flipsPerStep = 1
	}
	perm := r.Perm(dim)
	next := 0
	for l := 1; l < levels; l++ {
		copy(lv.Row(l), lv.Row(l-1))
		for f := 0; f < flipsPerStep && next < dim; f++ {
			j := perm[next]
			lv.Row(l)[j] = -lv.Row(l)[j]
			next++
		}
	}
	return &LevelEncoder{IDs: ids, Levels: lv, Lo: lo, Hi: hi}
}

// Features returns the input dimensionality n.
func (e *LevelEncoder) Features() int { return e.IDs.Shape[0] }

// Dim returns the hypervector width d.
func (e *LevelEncoder) Dim() int { return e.IDs.Shape[1] }

// NumLevels returns the quantization depth L.
func (e *LevelEncoder) NumLevels() int { return e.Levels.Shape[0] }

// quantize maps a feature value to its level index.
func (e *LevelEncoder) quantize(v float32) int {
	if v <= e.Lo {
		return 0
	}
	if v >= e.Hi {
		return e.NumLevels() - 1
	}
	frac := float64(v-e.Lo) / float64(e.Hi-e.Lo)
	idx := int(frac * float64(e.NumLevels()))
	if idx >= e.NumLevels() {
		idx = e.NumLevels() - 1
	}
	return idx
}

// Encode writes Σ IDᵢ ⊙ L(q(fᵢ)) into dst.
func (e *LevelEncoder) Encode(dst, features []float32) {
	if len(features) != e.Features() || len(dst) != e.Dim() {
		panic(fmt.Sprintf("hdc: level encode dims: features %d, dst %d, encoder %d→%d",
			len(features), len(dst), e.Features(), e.Dim()))
	}
	for j := range dst {
		dst[j] = 0
	}
	d := e.Dim()
	for i, v := range features {
		id := e.IDs.F32[i*d : (i+1)*d]
		lvl := e.Levels.Row(e.quantize(v))
		for j := range dst {
			dst[j] += id[j] * lvl[j]
		}
	}
}

// EncodeBatch encodes every row of an [s, n] matrix.
func (e *LevelEncoder) EncodeBatch(x *tensor.Tensor) *tensor.Tensor {
	if x.DType != tensor.Float32 || len(x.Shape) != 2 || x.Shape[1] != e.Features() {
		panic(fmt.Sprintf("hdc: EncodeBatch input %v, want [*, %d]", x.Shape, e.Features()))
	}
	out := tensor.New(tensor.Float32, x.Shape[0], e.Dim())
	tensor.ParallelFor(x.Shape[0], 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Encode(out.Row(i), x.Row(i))
		}
	})
	return out
}

// IDLevelModel is an HDC classifier over the record-based encoding.
type IDLevelModel struct {
	Enc     *LevelEncoder
	Classes *tensor.Tensor // [k, d]
}

// IDLevelConfig controls record-based training.
type IDLevelConfig struct {
	Dim          int
	Levels       int
	Epochs       int
	LearningRate float32
	Seed         uint64
}

// TrainIDLevel trains a record-based classifier with the same
// perceptron-style update loop as the projection model.
func TrainIDLevel(train *dataset.Dataset, cfg IDLevelConfig) (*IDLevelModel, *TrainStats, error) {
	if train == nil || train.Samples() == 0 {
		return nil, nil, fmt.Errorf("hdc: empty training set")
	}
	if cfg.Dim == 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.Levels == 0 {
		cfg.Levels = 32
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1
	}
	r := rng.New(cfg.Seed)
	// Generated datasets are standardized; ±3σ covers the mass.
	enc := NewLevelEncoder(train.Features(), cfg.Dim, cfg.Levels, -3, 3, r.Split())
	m := &IDLevelModel{
		Enc:     enc,
		Classes: tensor.New(tensor.Float32, train.Classes, cfg.Dim),
	}
	encoded := enc.EncodeBatch(train.X)
	stats, err := fitClasses(m.Classes, encoded, train.Y, cfg.Epochs, cfg.LearningRate, r.Split())
	if err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// Predict classifies one raw feature vector.
func (m *IDLevelModel) Predict(features []float32) int {
	e := make([]float32, m.Enc.Dim())
	m.Enc.Encode(e, features)
	scores := make([]float32, m.Classes.Shape[0])
	tensor.MatVec(scores, m.Classes, e)
	return tensor.ArgMax(scores)
}

// Accuracy evaluates on a labelled dataset.
func (m *IDLevelModel) Accuracy(ds *dataset.Dataset) float64 {
	enc := m.Enc.EncodeBatch(ds.X)
	scores := make([]float32, m.Classes.Shape[0])
	correct := 0
	for i := 0; i < ds.Samples(); i++ {
		tensor.MatVec(scores, m.Classes, enc.Row(i))
		if tensor.ArgMax(scores) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Samples())
}
