package hdc

import (
	"fmt"
	"sort"

	"hdcedge/internal/tensor"
)

// This file implements the interpretability hook the paper's introduction
// credits HDC with ("intuitive and human-interpretability [18]"): because
// the score is a bilinear form — score_c(F) = tanh(F·B)·C_c — each input
// feature's influence on a decision can be read out directly, without
// gradients or a surrogate model.

// Attribution is one feature's contribution to a classification.
type Attribution struct {
	Feature int
	// Score is the feature's linearized contribution to the predicted
	// class's margin over the runner-up; positive values support the
	// prediction.
	Score float64
}

// Explain returns per-feature attributions for the model's prediction on
// features, sorted by descending |Score|, along with the predicted class.
//
// The attribution linearizes the encoder at the input: with
// h = F·B and E = tanh(h), feature i contributes
//
//	fᵢ · Σ_j Bᵢⱼ · tanh'(hⱼ) · (C_pred,j − C_second,j)
//
// to the margin between the predicted class and the strongest
// alternative — an exact first-order decomposition of the decision.
func (m *Model) Explain(features []float32) (pred int, attrs []Attribution) {
	n := m.Encoder.Features()
	if len(features) != n {
		panic(fmt.Sprintf("hdc: Explain features %d, model expects %d", len(features), n))
	}
	d := m.Dim()
	// Forward pass, keeping the pre-activation.
	h := make([]float32, d)
	tensor.VecMat(h, features, m.Encoder.Base)
	e := append([]float32(nil), h...)
	if m.Encoder.Nonlinear {
		tensor.TanhSlice(e)
	}
	scores := make([]float32, m.K())
	tensor.MatVec(scores, m.Classes, e)
	pred = tensor.ArgMax(scores)
	second := 0
	if pred == 0 && m.K() > 1 {
		second = 1
	}
	for c := range scores {
		if c != pred && scores[c] > scores[second] || second == pred {
			second = c
		}
	}

	// Margin direction in hypervector space, weighted by the local
	// encoder slope tanh'(h) = 1 - tanh²(h).
	w := make([]float64, d)
	cp := m.Classes.Row(pred)
	cs := m.Classes.Row(second)
	for j := 0; j < d; j++ {
		slope := 1.0
		if m.Encoder.Nonlinear {
			t := float64(e[j])
			slope = 1 - t*t
		}
		w[j] = slope * float64(cp[j]-cs[j])
	}

	attrs = make([]Attribution, n)
	for i := 0; i < n; i++ {
		row := m.Encoder.Base.Row(i)
		var dot float64
		for j := 0; j < d; j++ {
			dot += float64(row[j]) * w[j]
		}
		attrs[i] = Attribution{Feature: i, Score: float64(features[i]) * dot}
	}
	sort.Slice(attrs, func(a, b int) bool {
		sa, sb := attrs[a].Score, attrs[b].Score
		if sa < 0 {
			sa = -sa
		}
		if sb < 0 {
			sb = -sb
		}
		return sa > sb
	})
	return pred, attrs
}

// SaliencyMass returns the fraction of total absolute attribution carried
// by the given feature set — a summary statistic for "does the model look
// at the right features".
func SaliencyMass(attrs []Attribution, features map[int]bool) float64 {
	var in, total float64
	for _, a := range attrs {
		s := a.Score
		if s < 0 {
			s = -s
		}
		total += s
		if features[a.Feature] {
			in += s
		}
	}
	if total == 0 {
		return 0
	}
	return in / total
}
