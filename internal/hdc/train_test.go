package hdc

import (
	"os"
	"path/filepath"
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func synthTrainTest(t testing.TB, features, samples, classes int, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(features, samples, classes, seed), 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(seed+1))
	return train, test
}

func TestTrainLearnsSynthetic(t *testing.T) {
	train, test := synthTrainTest(t, 40, 1600, 5, 100)
	cfg := TrainConfig{Dim: 2048, Epochs: 10, LearningRate: 1, Nonlinear: true, Seed: 7}
	model, stats, err := Train(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := model.Accuracy(test)
	if acc < 0.75 {
		t.Fatalf("test accuracy %.3f; want ≥ 0.75 (chance 0.2)", acc)
	}
	if len(stats.Epochs) != 10 {
		t.Fatalf("%d epoch stats", len(stats.Epochs))
	}
}

func TestTrainingAccuracyImproves(t *testing.T) {
	// Fig 4's qualitative shape: early epochs must be worse than late.
	train, test := synthTrainTest(t, 30, 1200, 6, 200)
	cfg := TrainConfig{Dim: 2048, Epochs: 12, LearningRate: 1, Nonlinear: true, Seed: 3}
	_, stats, err := Train(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := stats.Epochs[0].TrainAccuracy
	lastAvg := (stats.Epochs[10].TrainAccuracy + stats.Epochs[11].TrainAccuracy) / 2
	if lastAvg <= first {
		t.Fatalf("training accuracy did not improve: %.3f -> %.3f", first, lastAvg)
	}
	if stats.Epochs[0].Updates <= stats.Epochs[11].Updates {
		t.Fatalf("updates did not decrease: %d -> %d", stats.Epochs[0].Updates, stats.Epochs[11].Updates)
	}
}

func TestNonlinearBeatsLinearOnMultiModal(t *testing.T) {
	// The paper motivates tanh encoding with linearly-inseparable data:
	// multi-modal classes must favor the nonlinear encoder.
	spec := dataset.SyntheticSpec(24, 2400, 4, 42)
	spec.ModesPerClass = 4
	spec.ClusterSpread = 0.4
	ds, err := dataset.Generate(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(43))
	base := TrainConfig{Dim: 4096, Epochs: 12, LearningRate: 1, Seed: 9}

	nl := base
	nl.Nonlinear = true
	mNL, _, err := Train(train, nil, nl)
	if err != nil {
		t.Fatal(err)
	}
	lin := base
	lin.Nonlinear = false
	mLin, _, err := Train(train, nil, lin)
	if err != nil {
		t.Fatal(err)
	}
	accNL := mNL.Accuracy(test)
	accLin := mLin.Accuracy(test)
	if accNL < accLin-0.02 {
		t.Fatalf("nonlinear %.3f worse than linear %.3f on multi-modal data", accNL, accLin)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, _, err := Train(nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestFitEncodedRejectsBadLabels(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 3)
	e := tensor.New(tensor.Float32, 2, 64)
	if _, err := m.FitEncoded(e, []int{0, 7}, nil, nil, 1, 1, rng.New(2)); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := m.FitEncoded(e, []int{0}, nil, nil, 1, 1, rng.New(2)); err == nil {
		t.Fatal("label count mismatch accepted")
	}
}

func TestFitEncodedRejectsDimMismatch(t *testing.T) {
	enc := NewEncoder(4, 64, true, rng.New(1))
	m := NewModel(enc, 3)
	e := tensor.New(tensor.Float32, 2, 32)
	if _, err := m.FitEncoded(e, []int{0, 1}, nil, nil, 1, 1, rng.New(2)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestBundleDetachInverse(t *testing.T) {
	enc := NewEncoder(4, 32, true, rng.New(5))
	m := NewModel(enc, 2)
	e := make([]float32, 32)
	rng.New(6).FillNormal(e)
	before := append([]float32(nil), m.Classes.Row(0)...)
	m.Bundle(0, 0.5, e)
	m.Detach(0, 0.5, e)
	for j, v := range m.Classes.Row(0) {
		if v != before[j] {
			t.Fatalf("bundle+detach not identity at %d", j)
		}
	}
}

func TestUpdateRule(t *testing.T) {
	// A misprediction must move the true class toward E and the predicted
	// class away, by exactly λE.
	enc := NewEncoder(4, 16, true, rng.New(7))
	m := NewModel(enc, 2)
	e := make([]float32, 16)
	rng.New(8).FillNormal(e)
	lambda := float32(0.25)
	m.Bundle(1, lambda, e)
	m.Detach(0, lambda, e)
	for j := range e {
		if m.Classes.Row(1)[j] != lambda*e[j] {
			t.Fatal("bundle wrong")
		}
		if m.Classes.Row(0)[j] != -lambda*e[j] {
			t.Fatal("detach wrong")
		}
	}
}

func TestCosineMetricAgreesOnNormalizedClasses(t *testing.T) {
	enc := NewEncoder(8, 256, true, rng.New(9))
	m := NewModel(enc, 3)
	r := rng.New(10)
	// Give classes equal norms; then dot and cosine must rank equally.
	for c := 0; c < 3; c++ {
		row := m.Classes.Row(c)
		r.FillNormal(row)
		n := tensor.Norm(row)
		for j := range row {
			row[j] /= n
		}
	}
	e := make([]float32, 256)
	r.FillNormal(e)
	m.Metric = DotSimilarity
	dot := m.ClassifyEncoded(e)
	m.Metric = CosineSimilarity
	cos := m.ClassifyEncoded(e)
	if dot != cos {
		t.Fatalf("metrics disagree on equal-norm classes: dot %d, cos %d", dot, cos)
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	train, test := synthTrainTest(t, 16, 600, 3, 300)
	m, _, err := Train(train, nil, TrainConfig{Dim: 1024, Epochs: 5, LearningRate: 1, Nonlinear: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(test.X)
	for i := 0; i < test.Samples(); i++ {
		if single := m.Predict(test.X.Row(i)); single != batch[i] {
			t.Fatalf("sample %d: batch %d vs single %d", i, batch[i], single)
		}
	}
}

func TestHigherDimHelps(t *testing.T) {
	// HDC accuracy should not degrade as d grows (and typically improves).
	train, test := synthTrainTest(t, 30, 1200, 6, 400)
	small, _, err := Train(train, nil, TrainConfig{Dim: 128, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Train(train, nil, TrainConfig{Dim: 4096, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if big.Accuracy(test) < small.Accuracy(test)-0.05 {
		t.Fatalf("d=4096 accuracy %.3f much worse than d=128 %.3f", big.Accuracy(test), small.Accuracy(test))
	}
}

func TestTotalUpdates(t *testing.T) {
	s := &TrainStats{Epochs: []EpochStats{{Updates: 3}, {Updates: 5}}}
	if s.TotalUpdates() != 8 {
		t.Fatalf("TotalUpdates = %d", s.TotalUpdates())
	}
}

func TestModelClone(t *testing.T) {
	enc := NewEncoder(4, 32, true, rng.New(11))
	m := NewModel(enc, 2)
	c := m.Clone()
	c.Classes.F32[0] = 42
	c.Encoder.Base.F32[0] = 42
	if m.Classes.F32[0] == 42 || m.Encoder.Base.F32[0] == 42 {
		t.Fatal("Clone shares storage")
	}
}

func TestModelSaveLoad(t *testing.T) {
	train, _ := synthTrainTest(t, 12, 400, 3, 500)
	m, _, err := Train(train, nil, TrainConfig{Dim: 256, Epochs: 3, LearningRate: 1, Nonlinear: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.hdm")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != m.Dim() || got.K() != m.K() || got.Encoder.Features() != m.Encoder.Features() {
		t.Fatal("dims changed in round trip")
	}
	if got.Encoder.Nonlinear != m.Encoder.Nonlinear || got.Metric != m.Metric {
		t.Fatal("flags changed in round trip")
	}
	for i := range m.Classes.F32 {
		if got.Classes.F32[i] != m.Classes.F32[i] {
			t.Fatal("classes changed in round trip")
		}
	}
	// The loaded model must classify identically.
	probe := train.X.Row(0)
	if got.Predict(probe) != m.Predict(probe) {
		t.Fatal("loaded model predicts differently")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err == nil {
		t.Fatal("garbage model accepted")
	}
}

func writeJunk(path string) error {
	return os.WriteFile(path, []byte("garbage bytes"), 0o644)
}
