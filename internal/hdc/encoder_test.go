package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func TestEncoderShape(t *testing.T) {
	e := NewEncoder(10, 500, true, rng.New(1))
	if e.Features() != 10 || e.Dim() != 500 {
		t.Fatalf("encoder dims %d×%d", e.Features(), e.Dim())
	}
}

func TestEncoderPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero features")
		}
	}()
	NewEncoder(0, 10, true, rng.New(1))
}

func TestBaseHypervectorsNearOrthogonal(t *testing.T) {
	// The paper relies on E[Bi · Bj] ≈ 0 for i ≠ j in high dimension.
	e := NewEncoder(16, 10000, true, rng.New(2))
	for i := 0; i < e.Features(); i++ {
		for j := i + 1; j < e.Features(); j++ {
			cos := tensor.CosineSimilarity(e.Base.Row(i), e.Base.Row(j))
			if math.Abs(float64(cos)) > 0.05 {
				t.Fatalf("bases %d,%d cosine %v; want near-orthogonal", i, j, cos)
			}
		}
	}
}

func TestBaseHypervectorsStandardNormal(t *testing.T) {
	e := NewEncoder(4, 10000, true, rng.New(3))
	var sum, sumSq float64
	for _, v := range e.Base.F32 {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(e.Base.F32))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("base stats mean=%v var=%v, want ~N(0,1)", mean, variance)
	}
}

func TestEncodeMatchesDefinition(t *testing.T) {
	// E = tanh(Σ fᵢ·Bᵢ), verified element-wise against a direct sum.
	e := NewEncoder(3, 64, true, rng.New(4))
	f := []float32{0.5, -1.25, 2}
	got := make([]float32, 64)
	e.Encode(got, f)
	for j := 0; j < 64; j++ {
		var want float64
		for i := 0; i < 3; i++ {
			want += float64(f[i]) * float64(e.Base.Row(i)[j])
		}
		want = math.Tanh(want)
		if math.Abs(float64(got[j])-want) > 1e-5 {
			t.Fatalf("elem %d: %v, want %v", j, got[j], want)
		}
	}
}

func TestEncodeLinearSkipsTanh(t *testing.T) {
	r := rng.New(5)
	lin := NewEncoder(3, 32, false, r)
	nl := &Encoder{Base: lin.Base.Clone(), Nonlinear: true}
	f := []float32{2, -3, 1}
	a := make([]float32, 32)
	b := make([]float32, 32)
	lin.Encode(a, f)
	nl.Encode(b, f)
	for j := range a {
		if math.Abs(float64(b[j])-math.Tanh(float64(a[j]))) > 1e-5 {
			t.Fatalf("nonlinear encode is not tanh of linear at %d", j)
		}
	}
}

func TestEncodeBatchMatchesSingle(t *testing.T) {
	e := NewEncoder(8, 128, true, rng.New(6))
	r := rng.New(7)
	x := tensor.New(tensor.Float32, 5, 8)
	r.FillNormal(x.F32)
	batch := e.EncodeBatch(x)
	single := make([]float32, 128)
	for i := 0; i < 5; i++ {
		e.Encode(single, x.Row(i))
		for j := range single {
			if math.Abs(float64(batch.Row(i)[j]-single[j])) > 1e-4 {
				t.Fatalf("row %d elem %d: batch %v, single %v", i, j, batch.Row(i)[j], single[j])
			}
		}
	}
}

func TestEncodeOutputBounded(t *testing.T) {
	e := NewEncoder(20, 256, true, rng.New(8))
	f := make([]float32, 20)
	rng.New(9).FillUniform(f, -10, 10)
	out := make([]float32, 256)
	e.Encode(out, f)
	for _, v := range out {
		if v < -1 || v > 1 {
			t.Fatalf("tanh output out of (-1,1): %v", v)
		}
	}
}

func TestMaskFeatures(t *testing.T) {
	e := NewEncoder(4, 16, true, rng.New(10))
	keep := []bool{true, false, true, false}
	e.MaskFeatures(keep)
	for i, k := range keep {
		row := e.Base.Row(i)
		zero := true
		for _, v := range row {
			if v != 0 {
				zero = false
			}
		}
		if k && zero {
			t.Fatalf("kept feature %d was zeroed", i)
		}
		if !k && !zero {
			t.Fatalf("masked feature %d not zeroed", i)
		}
	}
	// A masked feature must not influence encodings.
	a := make([]float32, 16)
	b := make([]float32, 16)
	e.Encode(a, []float32{1, 5, 2, -3})
	e.Encode(b, []float32{1, -9, 2, 100})
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("masked features leaked into encoding")
		}
	}
}

func TestMaskFeaturesPanicsOnLength(t *testing.T) {
	e := NewEncoder(4, 8, true, rng.New(11))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad mask length")
		}
	}()
	e.MaskFeatures([]bool{true})
}

// Property: encoding is deterministic and bounded for arbitrary inputs.
func TestQuickEncodeDeterministicBounded(t *testing.T) {
	e := NewEncoder(6, 64, true, rng.New(12))
	f := func(raw [6]int16) bool {
		in := make([]float32, 6)
		for i, v := range raw {
			in[i] = float32(v) / 1000
		}
		a := make([]float32, 64)
		b := make([]float32, 64)
		e.Encode(a, in)
		e.Encode(b, in)
		for j := range a {
			if a[j] != b[j] || a[j] < -1 || a[j] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: similar inputs encode to similar hypervectors, dissimilar
// inputs to dissimilar ones (locality preservation of the projection).
func TestEncodeLocality(t *testing.T) {
	e := NewEncoder(32, 4096, true, rng.New(13))
	r := rng.New(14)
	base := make([]float32, 32)
	r.FillNormal(base)
	near := make([]float32, 32)
	far := make([]float32, 32)
	copy(near, base)
	near[0] += 0.01
	r.FillNormal(far)

	eb := make([]float32, 4096)
	en := make([]float32, 4096)
	ef := make([]float32, 4096)
	e.Encode(eb, base)
	e.Encode(en, near)
	e.Encode(ef, far)
	simNear := tensor.CosineSimilarity(eb, en)
	simFar := tensor.CosineSimilarity(eb, ef)
	if simNear < 0.99 {
		t.Fatalf("near input similarity %v, want ~1", simNear)
	}
	if simFar > simNear-0.1 {
		t.Fatalf("far input similarity %v not separated from near %v", simFar, simNear)
	}
}
