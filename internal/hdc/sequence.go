package hdc

import (
	"fmt"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file implements HDC sequence encoding with permutation binding —
// the mechanism behind the DNA pattern-matching systems the paper cites
// as HDC applications (GenieHD [26], correlative genome encoding [27]).
// A sequence window s₁s₂…s_g encodes as
//
//	H(window) = ρ^{g-1}(V[s₁]) ⊙ ρ^{g-2}(V[s₂]) ⊙ … ⊙ V[s_g]
//
// where V is a random bipolar item memory over the symbol alphabet, ρ is
// a fixed cyclic shift (the permutation that injects order), and ⊙ is
// element-wise binding. A whole sequence bundles its n-gram window
// hypervectors; similar sequences share windows and therefore bundle to
// similar hypervectors.

// SequenceEncoder encodes discrete symbol sequences.
type SequenceEncoder struct {
	// Items is the bipolar item memory, [alphabet, d].
	Items *tensor.Tensor
	// N is the n-gram window length.
	N int
}

// NewSequenceEncoder draws an item memory for `alphabet` symbols at width
// dim, with n-gram windows of length n.
func NewSequenceEncoder(alphabet, dim, n int, r *rng.RNG) *SequenceEncoder {
	if alphabet < 2 || dim <= 0 || n < 1 {
		panic(fmt.Sprintf("hdc: invalid sequence encoder (alphabet=%d d=%d n=%d)", alphabet, dim, n))
	}
	items := tensor.New(tensor.Float32, alphabet, dim)
	for i := range items.F32 {
		if r.Uint64()&1 == 1 {
			items.F32[i] = 1
		} else {
			items.F32[i] = -1
		}
	}
	return &SequenceEncoder{Items: items, N: n}
}

// Alphabet returns the symbol count.
func (e *SequenceEncoder) Alphabet() int { return e.Items.Shape[0] }

// Dim returns the hypervector width.
func (e *SequenceEncoder) Dim() int { return e.Items.Shape[1] }

// rotated writes ρ^k(V[sym]) into dst: a cyclic right shift by k.
func (e *SequenceEncoder) rotated(dst []float32, sym, k int) {
	d := e.Dim()
	src := e.Items.Row(sym)
	k %= d
	copy(dst[k:], src[:d-k])
	copy(dst[:k], src[d-k:])
}

// EncodeWindow writes the bound n-gram hypervector of window into dst.
// The window must have exactly N symbols, each within the alphabet.
func (e *SequenceEncoder) EncodeWindow(dst []float32, window []int) {
	if len(window) != e.N {
		panic(fmt.Sprintf("hdc: window length %d, want %d", len(window), e.N))
	}
	d := e.Dim()
	tmp := make([]float32, d)
	for j := range dst {
		dst[j] = 1
	}
	for pos, sym := range window {
		if sym < 0 || sym >= e.Alphabet() {
			panic(fmt.Sprintf("hdc: symbol %d outside alphabet [0,%d)", sym, e.Alphabet()))
		}
		e.rotated(tmp, sym, e.N-1-pos)
		for j := range dst {
			dst[j] *= tmp[j]
		}
	}
}

// EncodeSequence bundles all n-gram windows of seq into dst. Sequences
// shorter than N encode to the zero vector.
func (e *SequenceEncoder) EncodeSequence(dst []float32, seq []int) {
	for j := range dst {
		dst[j] = 0
	}
	if len(seq) < e.N {
		return
	}
	window := make([]float32, e.Dim())
	for start := 0; start+e.N <= len(seq); start++ {
		e.EncodeWindow(window, seq[start:start+e.N])
		for j := range dst {
			dst[j] += window[j]
		}
	}
}

// SequenceMatcher is a reference-library search: reference sequences are
// encoded once; queries match by cosine similarity, the GenieHD pattern.
type SequenceMatcher struct {
	Enc  *SequenceEncoder
	Refs *tensor.Tensor // [refs, d]
}

// NewSequenceMatcher encodes the reference library.
func NewSequenceMatcher(enc *SequenceEncoder, refs [][]int) *SequenceMatcher {
	m := &SequenceMatcher{
		Enc:  enc,
		Refs: tensor.New(tensor.Float32, len(refs), enc.Dim()),
	}
	for i, ref := range refs {
		enc.EncodeSequence(m.Refs.Row(i), ref)
	}
	return m
}

// Match returns the index of the reference most similar to query and the
// cosine similarity. An empty library returns (-1, 0).
func (m *SequenceMatcher) Match(query []int) (int, float32) {
	if m.Refs.Shape[0] == 0 {
		return -1, 0
	}
	q := make([]float32, m.Enc.Dim())
	m.Enc.EncodeSequence(q, query)
	best, bestSim := -1, float32(-2)
	for i := 0; i < m.Refs.Shape[0]; i++ {
		if sim := tensor.CosineSimilarity(q, m.Refs.Row(i)); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return best, bestSim
}
