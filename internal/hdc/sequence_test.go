package hdc

import (
	"math"
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func TestSequenceEncoderConstruction(t *testing.T) {
	e := NewSequenceEncoder(4, 2048, 3, rng.New(1))
	if e.Alphabet() != 4 || e.Dim() != 2048 || e.N != 3 {
		t.Fatalf("dims %d/%d/%d", e.Alphabet(), e.Dim(), e.N)
	}
	for _, v := range e.Items.F32 {
		if v != 1 && v != -1 {
			t.Fatalf("non-bipolar item %v", v)
		}
	}
}

func TestRotationIsCyclic(t *testing.T) {
	e := NewSequenceEncoder(2, 64, 2, rng.New(2))
	a := make([]float32, 64)
	e.rotated(a, 0, 0)
	for j, v := range a {
		if v != e.Items.Row(0)[j] {
			t.Fatal("rotation by 0 changed the vector")
		}
	}
	b := make([]float32, 64)
	e.rotated(b, 0, 5)
	for j := range b {
		if b[(j+5)%64] != e.Items.Row(0)[(j+0)%64] {
			// Equivalent check: b[k] == src[(k-5) mod 64].
			t.Fatalf("rotation wrong at %d", j)
		}
	}
}

func TestWindowOrderMatters(t *testing.T) {
	// Permutation binding must distinguish "AB" from "BA".
	e := NewSequenceEncoder(4, 8192, 2, rng.New(3))
	ab := make([]float32, e.Dim())
	ba := make([]float32, e.Dim())
	e.EncodeWindow(ab, []int{0, 1})
	e.EncodeWindow(ba, []int{1, 0})
	if sim := tensor.CosineSimilarity(ab, ba); math.Abs(float64(sim)) > 0.1 {
		t.Fatalf("reversed windows similar: %v", sim)
	}
}

func TestWindowDeterministic(t *testing.T) {
	e := NewSequenceEncoder(4, 1024, 3, rng.New(4))
	a := make([]float32, 1024)
	b := make([]float32, 1024)
	e.EncodeWindow(a, []int{2, 0, 3})
	e.EncodeWindow(b, []int{2, 0, 3})
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("window encoding not deterministic")
		}
	}
	// Bound windows stay bipolar (products of ±1).
	for _, v := range a {
		if v != 1 && v != -1 {
			t.Fatalf("window value %v not bipolar", v)
		}
	}
}

func TestSimilarSequencesSimilarEncodings(t *testing.T) {
	// n = 6 over a 4-symbol alphabet gives 4096 window types, so two
	// independent 200-symbol sequences share almost no windows. (At
	// small n the bundle encodes the n-gram histogram and two uniform
	// random sequences look alike — correct but not what this test
	// probes.)
	e := NewSequenceEncoder(4, 8192, 6, rng.New(5))
	r := rng.New(6)
	seq := make([]int, 200)
	for i := range seq {
		seq[i] = r.Intn(4)
	}
	// One point mutation: most windows are shared.
	mutated := append([]int(nil), seq...)
	mutated[100] = (mutated[100] + 1) % 4
	// An unrelated sequence shares nothing systematically.
	random := make([]int, 200)
	for i := range random {
		random[i] = r.Intn(4)
	}
	a := make([]float32, e.Dim())
	b := make([]float32, e.Dim())
	c := make([]float32, e.Dim())
	e.EncodeSequence(a, seq)
	e.EncodeSequence(b, mutated)
	e.EncodeSequence(c, random)
	simMut := tensor.CosineSimilarity(a, b)
	simRand := tensor.CosineSimilarity(a, c)
	if simMut < 0.85 {
		t.Fatalf("point mutation dropped similarity to %v", simMut)
	}
	if float64(simRand) > 0.3 {
		t.Fatalf("random sequence similarity %v; want near zero", simRand)
	}
}

func TestShortSequenceEncodesZero(t *testing.T) {
	e := NewSequenceEncoder(4, 128, 5, rng.New(7))
	dst := make([]float32, 128)
	dst[0] = 42
	e.EncodeSequence(dst, []int{1, 2})
	for _, v := range dst {
		if v != 0 {
			t.Fatal("short sequence did not encode to zero")
		}
	}
}

func TestSequenceMatcherFindsMutatedReference(t *testing.T) {
	// The GenieHD scenario: match noisy reads against a reference
	// library.
	e := NewSequenceEncoder(4, 8192, 4, rng.New(8))
	r := rng.New(9)
	refs := make([][]int, 8)
	for i := range refs {
		refs[i] = make([]int, 300)
		for j := range refs[i] {
			refs[i][j] = r.Intn(4)
		}
	}
	m := NewSequenceMatcher(e, refs)
	correct := 0
	const trials = 24
	for trial := 0; trial < trials; trial++ {
		src := trial % len(refs)
		query := append([]int(nil), refs[src]...)
		// 3% point mutations.
		for k := 0; k < 9; k++ {
			pos := r.Intn(len(query))
			query[pos] = (query[pos] + 1 + r.Intn(3)) % 4
		}
		got, sim := m.Match(query)
		if got == src {
			correct++
		}
		if sim <= 0 {
			t.Fatalf("matched with non-positive similarity %v", sim)
		}
	}
	if correct < trials-1 {
		t.Fatalf("matched %d/%d mutated reads", correct, trials)
	}
}

func TestSequenceMatcherEmpty(t *testing.T) {
	e := NewSequenceEncoder(4, 128, 2, rng.New(10))
	m := NewSequenceMatcher(e, nil)
	if idx, _ := m.Match([]int{1, 2, 3}); idx != -1 {
		t.Fatal("empty library matched something")
	}
}

func TestEncodeWindowPanicsOnBadSymbol(t *testing.T) {
	e := NewSequenceEncoder(4, 64, 2, rng.New(11))
	defer func() {
		if recover() == nil {
			t.Fatal("bad symbol did not panic")
		}
	}()
	e.EncodeWindow(make([]float32, 64), []int{0, 9})
}
