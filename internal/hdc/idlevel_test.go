package hdc

import (
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func TestLevelEncoderConstruction(t *testing.T) {
	e := NewLevelEncoder(10, 1024, 16, -3, 3, rng.New(1))
	if e.Features() != 10 || e.Dim() != 1024 || e.NumLevels() != 16 {
		t.Fatalf("dims %d/%d/%d", e.Features(), e.Dim(), e.NumLevels())
	}
	// ID hypervectors must be bipolar.
	for _, v := range e.IDs.F32 {
		if v != 1 && v != -1 {
			t.Fatalf("non-bipolar ID entry %v", v)
		}
	}
	for _, v := range e.Levels.F32 {
		if v != 1 && v != -1 {
			t.Fatalf("non-bipolar level entry %v", v)
		}
	}
}

func TestLevelChainCorrelationStructure(t *testing.T) {
	// Adjacent levels must be highly similar; the chain endpoints must
	// not be.
	e := NewLevelEncoder(4, 8192, 16, -3, 3, rng.New(2))
	adj := tensor.CosineSimilarity(e.Levels.Row(7), e.Levels.Row(8))
	if adj < 0.8 {
		t.Fatalf("adjacent levels cosine %v; want high similarity", adj)
	}
	ends := tensor.CosineSimilarity(e.Levels.Row(0), e.Levels.Row(15))
	if ends > 0.2 {
		t.Fatalf("chain endpoints cosine %v; want near-orthogonal", ends)
	}
	// Similarity must decay monotonically-ish with level distance.
	s1 := tensor.CosineSimilarity(e.Levels.Row(0), e.Levels.Row(4))
	s2 := tensor.CosineSimilarity(e.Levels.Row(0), e.Levels.Row(12))
	if s2 >= s1 {
		t.Fatalf("similarity did not decay: d=4 %v vs d=12 %v", s1, s2)
	}
}

func TestLevelQuantize(t *testing.T) {
	e := NewLevelEncoder(2, 64, 8, -1, 1, rng.New(3))
	if e.quantize(-5) != 0 {
		t.Error("below-range value should clamp to level 0")
	}
	if e.quantize(5) != 7 {
		t.Error("above-range value should clamp to the top level")
	}
	if e.quantize(-1) != 0 || e.quantize(0.9999) != 7 {
		t.Error("boundary levels wrong")
	}
	prev := -1
	for v := float32(-1); v <= 1; v += 0.01 {
		l := e.quantize(v)
		if l < prev {
			t.Fatalf("quantize not monotone at %v", v)
		}
		prev = l
	}
}

func TestLevelEncodeDefinition(t *testing.T) {
	// E must equal the explicit Σ ID⊙L sum.
	e := NewLevelEncoder(3, 128, 4, -2, 2, rng.New(4))
	f := []float32{-2, 0, 2}
	got := make([]float32, 128)
	e.Encode(got, f)
	for j := 0; j < 128; j++ {
		var want float32
		for i, v := range f {
			want += e.IDs.Row(i)[j] * e.Levels.Row(e.quantize(v))[j]
		}
		if got[j] != want {
			t.Fatalf("elem %d: %v, want %v", j, got[j], want)
		}
	}
}

func TestLevelEncodeBatchMatchesSingle(t *testing.T) {
	e := NewLevelEncoder(6, 256, 8, -3, 3, rng.New(5))
	x := tensor.New(tensor.Float32, 5, 6)
	rng.New(6).FillNormal(x.F32)
	batch := e.EncodeBatch(x)
	single := make([]float32, 256)
	for i := 0; i < 5; i++ {
		e.Encode(single, x.Row(i))
		for j := range single {
			if batch.Row(i)[j] != single[j] {
				t.Fatalf("row %d elem %d differs", i, j)
			}
		}
	}
}

func TestTrainIDLevelLearns(t *testing.T) {
	train, test := synthTrainTest(t, 24, 1600, 4, 800)
	m, stats, err := TrainIDLevel(train, IDLevelConfig{Dim: 4096, Levels: 32, Epochs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.6 {
		t.Fatalf("ID-level accuracy %.3f (chance 0.25)", acc)
	}
	if len(stats.Epochs) != 10 {
		t.Fatalf("%d epochs", len(stats.Epochs))
	}
}

func TestTrainIDLevelRejectsEmpty(t *testing.T) {
	if _, _, err := TrainIDLevel(nil, IDLevelConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestProjectionBeatsIDLevelOnDenseFeatures(t *testing.T) {
	// The paper's §III-A claim: the non-linear projection encoding
	// achieves higher learning accuracy than record-based mappings on
	// dense real-valued features (and, unlike ID-level, it maps to the
	// accelerator). Allow a small tolerance — the claim is "not worse".
	train, test := synthTrainTest(t, 32, 2000, 5, 801)
	proj, _, err := Train(train, nil, TrainConfig{Dim: 4096, Epochs: 10, LearningRate: 1, Nonlinear: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	idl, _, err := TrainIDLevel(train, IDLevelConfig{Dim: 4096, Levels: 32, Epochs: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pAcc := proj.Accuracy(test)
	iAcc := idl.Accuracy(test)
	if pAcc < iAcc-0.03 {
		t.Fatalf("projection %.3f worse than ID-level %.3f", pAcc, iAcc)
	}
}

func TestLevelEncoderPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for L=1")
		}
	}()
	NewLevelEncoder(4, 64, 1, -1, 1, rng.New(1))
}
