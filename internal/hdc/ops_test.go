package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"hdcedge/internal/rng"
)

const opsDim = 4096

func TestBundlePreservesCosine(t *testing.T) {
	// The defining property: a bundle is similar to each of its members.
	r := rng.New(1)
	a := RandomHypervector(opsDim, r)
	b := RandomHypervector(opsDim, r)
	c := RandomHypervector(opsDim, r)
	s := Bundle(a, b, c)
	for i, m := range [][]float32{a, b, c} {
		if sim := Cosine(s, m); sim < 0.4 {
			t.Fatalf("bundle similarity to member %d = %v", i, sim)
		}
	}
	unrelated := RandomHypervector(opsDim, r)
	if sim := Cosine(s, unrelated); math.Abs(float64(sim)) > 0.1 {
		t.Fatalf("bundle similar to unrelated vector: %v", sim)
	}
}

func TestBindDecorrelates(t *testing.T) {
	// Binding produces a vector dissimilar to both operands.
	r := rng.New(2)
	a := RandomBipolar(opsDim, r)
	b := RandomBipolar(opsDim, r)
	ab := Bind(a, b)
	if sim := Cosine(ab, a); math.Abs(float64(sim)) > 0.1 {
		t.Fatalf("bound vector similar to operand: %v", sim)
	}
	if sim := Cosine(ab, b); math.Abs(float64(sim)) > 0.1 {
		t.Fatalf("bound vector similar to operand: %v", sim)
	}
}

func TestBipolarBindSelfInverse(t *testing.T) {
	// For bipolar vectors, bind(bind(a, b), b) == a exactly.
	r := rng.New(3)
	a := RandomBipolar(opsDim, r)
	b := RandomBipolar(opsDim, r)
	back := Bind(Bind(a, b), b)
	for j := range a {
		if back[j] != a[j] {
			t.Fatalf("unbinding failed at %d", j)
		}
	}
}

func TestPermuteDecorrelatesAndInverts(t *testing.T) {
	r := rng.New(4)
	a := RandomHypervector(opsDim, r)
	rot := Permute(a, 1)
	if sim := Cosine(a, rot); math.Abs(float64(sim)) > 0.1 {
		t.Fatalf("single rotation kept similarity %v", sim)
	}
	back := Permute(rot, -1)
	for j := range a {
		if back[j] != a[j] {
			t.Fatalf("inverse rotation failed at %d", j)
		}
	}
}

func TestPermutePreservesDistances(t *testing.T) {
	r := rng.New(5)
	a := RandomHypervector(opsDim, r)
	b := RandomHypervector(opsDim, r)
	before := Cosine(a, b)
	after := Cosine(Permute(a, 17), Permute(b, 17))
	if math.Abs(float64(before-after)) > 1e-5 {
		t.Fatalf("permutation changed similarity: %v -> %v", before, after)
	}
}

func TestSign(t *testing.T) {
	s := Sign([]float32{2, -3, 0, 0.1})
	want := []float32{1, -1, -1, 1}
	for j := range want {
		if s[j] != want[j] {
			t.Fatalf("Sign = %v", s)
		}
	}
}

func TestBundlePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Bundle([]float32{1}, []float32{1, 2})
}

// Property: Bind is commutative and associative.
func TestQuickBindAlgebra(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := RandomBipolar(256, r)
		b := RandomBipolar(256, r)
		c := RandomBipolar(256, r)
		ab := Bind(a, b)
		ba := Bind(b, a)
		abc1 := Bind(Bind(a, b), c)
		abc2 := Bind(a, Bind(b, c))
		for j := range ab {
			if ab[j] != ba[j] || abc1[j] != abc2[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bind distributes over Permute: ρ(a ⊙ b) = ρ(a) ⊙ ρ(b).
func TestQuickPermuteDistributesOverBind(t *testing.T) {
	f := func(seed uint64, k int16) bool {
		r := rng.New(seed)
		a := RandomBipolar(128, r)
		b := RandomBipolar(128, r)
		lhs := Permute(Bind(a, b), int(k))
		rhs := Bind(Permute(a, int(k)), Permute(b, int(k)))
		for j := range lhs {
			if lhs[j] != rhs[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Permute composes additively: ρ^j(ρ^k(a)) = ρ^{j+k}(a).
func TestQuickPermuteComposition(t *testing.T) {
	f := func(seed uint64, j, k int16) bool {
		r := rng.New(seed)
		a := RandomHypervector(97, r) // prime length stresses the modulo
		lhs := Permute(Permute(a, int(j)), int(k))
		rhs := Permute(a, int(j)+int(k))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: bundling then unbinding recovers an associated value —
// the record (key-value) retrieval identity HDC data structures build on.
func TestRecordRetrieval(t *testing.T) {
	r := rng.New(9)
	keys := make([][]float32, 4)
	vals := make([][]float32, 4)
	pairs := make([][]float32, 4)
	for i := range keys {
		keys[i] = RandomBipolar(opsDim, r)
		vals[i] = RandomBipolar(opsDim, r)
		pairs[i] = Bind(keys[i], vals[i])
	}
	record := Bundle(pairs...)
	for i := range keys {
		// Unbind with the key: record ⊙ key ≈ value (plus crosstalk).
		probe := Bind(record, keys[i])
		if sim := Cosine(probe, vals[i]); sim < 0.35 {
			t.Fatalf("retrieval %d similarity %v", i, sim)
		}
		// And not similar to another pair's value.
		other := vals[(i+1)%4]
		if sim := Cosine(probe, other); float64(sim) > 0.2 {
			t.Fatalf("retrieval %d leaked to other value: %v", i, sim)
		}
	}
}
