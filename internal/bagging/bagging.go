// Package bagging implements the paper's bootstrap-aggregating training
// optimization: M weak HDC sub-models of width d' = d/M are trained for
// fewer iterations on bootstrap-sampled subsets, then fused into a single
// full-width inference model with zero per-query overhead.
//
// The fusion identity the paper exploits: stacking the sub-model base
// matrices horizontally (Ɓ = [Ɓ¹ … Ɓᴹ], n×d) and the class matrices along
// the hypervector axis makes the fused model's dot-product score for class
// c equal the *sum* of the sub-model scores — consensus by score addition,
// computed in one vector-matrix multiply.
package bagging

import (
	"fmt"
	"sync"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Config controls ensemble training. The paper's operating point is
// M = 4, d' = 2500 (d/M), I' = 6, α = 0.6, β disabled (1.0).
type Config struct {
	// SubModels is M.
	SubModels int
	// Dim is the fused inference width d; each sub-model uses d/M.
	Dim int
	// Iterations is I', the per-sub-model training epochs.
	Iterations int
	// DatasetRatio is α, the bootstrap sample fraction per sub-model.
	DatasetRatio float64
	// FeatureRatio is β, the fraction of features kept per sub-model
	// (1 disables feature sampling, the paper's final choice).
	FeatureRatio float64
	// LearningRate is λ for the class-hypervector updates.
	LearningRate float32
	// Nonlinear selects tanh encoding.
	Nonlinear bool
	// Seed drives all sampling.
	Seed uint64
}

// DefaultConfig returns the paper's bagging operating point.
func DefaultConfig() Config {
	return Config{
		SubModels:    4,
		Dim:          hdc.DefaultDim,
		Iterations:   6,
		DatasetRatio: 0.6,
		FeatureRatio: 1.0,
		LearningRate: 1,
		Nonlinear:    true,
		Seed:         1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SubModels < 1:
		return fmt.Errorf("bagging: need at least one sub-model, got %d", c.SubModels)
	case c.Dim < c.SubModels:
		return fmt.Errorf("bagging: dim %d smaller than sub-model count %d", c.Dim, c.SubModels)
	case c.Iterations < 1:
		return fmt.Errorf("bagging: need at least one iteration, got %d", c.Iterations)
	case c.DatasetRatio <= 0 || c.DatasetRatio > 1:
		return fmt.Errorf("bagging: dataset ratio %v outside (0,1]", c.DatasetRatio)
	case c.FeatureRatio <= 0 || c.FeatureRatio > 1:
		return fmt.Errorf("bagging: feature ratio %v outside (0,1]", c.FeatureRatio)
	}
	return nil
}

// SubDim returns d', the per-sub-model hypervector width.
func (c Config) SubDim() int { return c.Dim / c.SubModels }

// CostReduction returns C'/C, the paper's weight-update cost model:
// C' = C · M · (d'/d) · (I'/I) · α · β relative to a full model trained
// for fullIterations.
func (c Config) CostReduction(fullIterations int) float64 {
	return float64(c.SubModels) *
		(float64(c.SubDim()) / float64(c.Dim)) *
		(float64(c.Iterations) / float64(fullIterations)) *
		c.DatasetRatio * c.FeatureRatio
}

// SubModelStats records one sub-model's training.
type SubModelStats struct {
	Samples  int // bootstrap subset size
	Features int // features kept after feature sampling
	Train    *hdc.TrainStats
}

// Stats aggregates ensemble training.
type Stats struct {
	SubModels []SubModelStats
}

// TotalUpdates sums misclassification updates over all sub-models; with
// SubDim scaling it drives the update-phase runtime model.
func (s *Stats) TotalUpdates() int {
	total := 0
	for _, sm := range s.SubModels {
		total += sm.Train.TotalUpdates()
	}
	return total
}

// Ensemble is a trained bag of HDC sub-models.
type Ensemble struct {
	Config Config
	Subs   []*hdc.Model
	// Masks[m] is the per-feature keep mask of sub-model m (all-true when
	// feature sampling is disabled).
	Masks [][]bool
	// SampleIdx[m] holds the bootstrap sample indices (into the training
	// set) sub-model m trained on; kept for out-of-bag evaluation.
	SampleIdx [][]int
}

// Train trains the ensemble on train. Each sub-model gets an independent
// base-hypervector group, a bootstrap dataset sample of size α·N (drawn
// with replacement), and optionally a feature mask keeping β·n features.
// Sub-models train concurrently; all randomness derives from
// pre-split per-sub-model generators, so results are deterministic
// regardless of scheduling.
func Train(train *dataset.Dataset, cfg Config) (*Ensemble, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if train == nil || train.Samples() == 0 {
		return nil, nil, fmt.Errorf("bagging: empty training set")
	}
	r := rng.New(cfg.Seed)
	n := train.Features()
	subDim := cfg.SubDim()

	ens := &Ensemble{
		Config:    cfg,
		Subs:      make([]*hdc.Model, cfg.SubModels),
		Masks:     make([][]bool, cfg.SubModels),
		SampleIdx: make([][]int, cfg.SubModels),
	}
	stats := &Stats{SubModels: make([]SubModelStats, cfg.SubModels)}

	// Derive every sub-model's generator sequentially, then train in
	// parallel.
	rms := make([]*rng.RNG, cfg.SubModels)
	for m := range rms {
		rms[m] = r.Split()
	}
	errs := make([]error, cfg.SubModels)
	var wg sync.WaitGroup
	for m := 0; m < cfg.SubModels; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rm := rms[m]
			enc := hdc.NewEncoder(n, subDim, cfg.Nonlinear, rm.Split())

			mask := make([]bool, n)
			kept := n
			if cfg.FeatureRatio < 1 {
				kept = int(float64(n) * cfg.FeatureRatio)
				if kept < 1 {
					kept = 1
				}
				for _, f := range rm.SampleWithoutReplacement(n, kept) {
					mask[f] = true
				}
				enc.MaskFeatures(mask)
			} else {
				for i := range mask {
					mask[i] = true
				}
			}

			subN := int(float64(train.Samples()) * cfg.DatasetRatio)
			if subN < 1 {
				subN = 1
			}
			idx := rm.SampleWithReplacement(train.Samples(), subN)
			subset := train.Subset(idx)

			model := hdc.NewModel(enc, train.Classes)
			encoded := enc.EncodeBatch(subset.X)
			ts, err := model.FitEncoded(encoded, subset.Y, nil, nil, cfg.Iterations, cfg.LearningRate, rm.Split())
			if err != nil {
				errs[m] = fmt.Errorf("bagging: sub-model %d: %w", m, err)
				return
			}
			ens.Subs[m] = model
			ens.Masks[m] = mask
			ens.SampleIdx[m] = idx
			stats.SubModels[m] = SubModelStats{Samples: subN, Features: kept, Train: ts}
		}(m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return ens, stats, nil
}

// OOBAccuracy estimates generalization accuracy without a held-out set:
// each training sample is scored only by the sub-models whose bootstrap
// sample did not contain it, and their summed similarities vote. Samples
// that every sub-model saw are skipped. It returns the accuracy and how
// many samples were evaluable.
func (e *Ensemble) OOBAccuracy(train *dataset.Dataset) (float64, int) {
	inBag := make([][]bool, len(e.Subs))
	for m, idx := range e.SampleIdx {
		inBag[m] = make([]bool, train.Samples())
		for _, i := range idx {
			inBag[m][i] = true
		}
	}
	k := e.Subs[0].K()
	total := make([]float32, k)
	scores := make([]float32, k)
	correct, evaluated := 0, 0
	for i := 0; i < train.Samples(); i++ {
		voters := 0
		for c := range total {
			total[c] = 0
		}
		for m, sub := range e.Subs {
			if inBag[m][i] {
				continue
			}
			enc := make([]float32, sub.Dim())
			sub.Encoder.Encode(enc, train.X.Row(i))
			sub.Scores(scores, enc)
			for c := range total {
				total[c] += scores[c]
			}
			voters++
		}
		if voters == 0 {
			continue
		}
		evaluated++
		if tensor.ArgMax(total) == train.Y[i] {
			correct++
		}
	}
	if evaluated == 0 {
		return 0, 0
	}
	return float64(correct) / float64(evaluated), evaluated
}

// Fuse combines the sub-models into one full-width inference model: base
// matrices stacked horizontally, class matrices concatenated along the
// hypervector axis. The fused model's dot score per class equals the sum
// of sub-model scores.
func (e *Ensemble) Fuse() *hdc.Model {
	bases := make([]*tensor.Tensor, len(e.Subs))
	classes := make([]*tensor.Tensor, len(e.Subs))
	for m, sub := range e.Subs {
		bases[m] = sub.Encoder.Base
		classes[m] = sub.Classes
	}
	fusedBase := tensor.HStack(bases...)
	// Class fusion: for class c the fused hypervector is the
	// concatenation of every sub-model's class-c hypervector, laid out to
	// match the stacked encoding.
	k := e.Subs[0].K()
	fusedClasses := tensor.New(tensor.Float32, k, fusedBase.Shape[1])
	off := 0
	for _, cm := range classes {
		subDim := cm.Shape[1]
		for c := 0; c < k; c++ {
			copy(fusedClasses.Row(c)[off:off+subDim], cm.Row(c))
		}
		off += subDim
	}
	return &hdc.Model{
		Encoder: &hdc.Encoder{Base: fusedBase, Nonlinear: e.Subs[0].Encoder.Nonlinear},
		Classes: fusedClasses,
	}
}

// PredictVote classifies by majority vote over sub-model predictions, the
// classical bagging consensus. Ties break toward the lowest class index.
// It exists for comparison against the fused score-sum model.
func (e *Ensemble) PredictVote(features []float32) int {
	k := e.Subs[0].K()
	votes := make([]int, k)
	for _, sub := range e.Subs {
		votes[sub.Predict(features)]++
	}
	best := 0
	for c := 1; c < k; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// PredictScoreSum classifies by summing sub-model similarity scores, which
// is mathematically what the fused model computes.
func (e *Ensemble) PredictScoreSum(features []float32) int {
	k := e.Subs[0].K()
	total := make([]float32, k)
	scores := make([]float32, k)
	for _, sub := range e.Subs {
		enc := make([]float32, sub.Dim())
		sub.Encoder.Encode(enc, features)
		sub.Scores(scores, enc)
		for c := range total {
			total[c] += scores[c]
		}
	}
	return tensor.ArgMax(total)
}

// Accuracy evaluates the fused model on a labelled dataset.
func (e *Ensemble) Accuracy(ds *dataset.Dataset) float64 {
	return e.Fuse().Accuracy(ds)
}
