package bagging

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
)

func synthSplit(t *testing.T, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(36, 2000, 5, seed), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(0.25, rng.New(seed+1))
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 2048 // keep tests fast; ratios match the paper
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SubModels = 0 },
		func(c *Config) { c.Dim = 2 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.DatasetRatio = 0 },
		func(c *Config) { c.DatasetRatio = 1.5 },
		func(c *Config) { c.FeatureRatio = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSubDim(t *testing.T) {
	c := DefaultConfig()
	if c.SubDim() != 2500 {
		t.Fatalf("SubDim = %d, want 2500", c.SubDim())
	}
}

func TestCostReductionPaperPoint(t *testing.T) {
	// M=4, d'/d=1/4, I'/I=6/20, α=0.6, β=1 → C'/C = 0.18.
	c := DefaultConfig()
	got := c.CostReduction(20)
	if math.Abs(got-0.18) > 1e-9 {
		t.Fatalf("CostReduction = %v, want 0.18", got)
	}
}

func TestCostReductionBelowOne(t *testing.T) {
	// The whole point: the bagging operating point must cost less than
	// full training.
	if c := DefaultConfig(); c.CostReduction(20) >= 1 {
		t.Fatal("bagging costs more than full training")
	}
}

func TestTrainProducesMSubModels(t *testing.T) {
	train, _ := synthSplit(t, 50)
	ens, stats, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Subs) != 4 || len(stats.SubModels) != 4 {
		t.Fatalf("got %d sub-models", len(ens.Subs))
	}
	for m, sub := range ens.Subs {
		if sub.Dim() != 512 {
			t.Fatalf("sub-model %d width %d, want 512", m, sub.Dim())
		}
		if stats.SubModels[m].Samples != int(0.6*float64(train.Samples())) {
			t.Fatalf("sub-model %d trained on %d samples", m, stats.SubModels[m].Samples)
		}
		if len(stats.SubModels[m].Train.Epochs) != 6 {
			t.Fatalf("sub-model %d ran %d iterations", m, len(stats.SubModels[m].Train.Epochs))
		}
	}
}

func TestSubModelsAreIndependent(t *testing.T) {
	train, _ := synthSplit(t, 51)
	ens, _, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Different base hypervector groups: first rows must differ.
	a := ens.Subs[0].Encoder.Base.F32
	b := ens.Subs[1].Encoder.Base.F32
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/100 {
		t.Fatalf("sub-model bases share %d/%d entries", same, len(a))
	}
}

func TestTrainDeterministic(t *testing.T) {
	train, _ := synthSplit(t, 52)
	cfg := smallConfig()
	e1, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.Subs[0].Classes.F32 {
		if e1.Subs[0].Classes.F32[i] != e2.Subs[0].Classes.F32[i] {
			t.Fatal("same seed produced different ensembles")
		}
	}
}

func TestFuseShapes(t *testing.T) {
	train, _ := synthSplit(t, 53)
	cfg := smallConfig()
	ens, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused := ens.Fuse()
	if fused.Dim() != cfg.Dim {
		t.Fatalf("fused dim %d, want %d", fused.Dim(), cfg.Dim)
	}
	if fused.Encoder.Features() != train.Features() {
		t.Fatalf("fused features %d", fused.Encoder.Features())
	}
	if fused.K() != train.Classes {
		t.Fatalf("fused classes %d", fused.K())
	}
}

func TestFusedModelEqualsScoreSum(t *testing.T) {
	// The central fusion identity: the single fused model must predict
	// exactly what summing sub-model scores predicts.
	train, test := synthSplit(t, 54)
	ens, _, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fused := ens.Fuse()
	for i := 0; i < min(200, test.Samples()); i++ {
		f := test.X.Row(i)
		if fused.Predict(f) != ens.PredictScoreSum(f) {
			t.Fatalf("sample %d: fused %d vs score-sum %d", i, fused.Predict(f), ens.PredictScoreSum(f))
		}
	}
}

func TestBaggingAccuracyNearFullModel(t *testing.T) {
	// Fig 7's claim: weak sub-models fused recover (approximately) the
	// fully-trained single model's accuracy.
	train, test := synthSplit(t, 55)
	full, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: 2048, Epochs: 20, LearningRate: 1, Nonlinear: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ens, _, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fullAcc := full.Accuracy(test)
	bagAcc := ens.Accuracy(test)
	if bagAcc < fullAcc-0.06 {
		t.Fatalf("bagging accuracy %.3f too far below full model %.3f", bagAcc, fullAcc)
	}
}

func TestFeatureSamplingMasks(t *testing.T) {
	train, _ := synthSplit(t, 56)
	cfg := smallConfig()
	cfg.FeatureRatio = 0.5
	ens, stats, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := train.Features()
	for m, mask := range ens.Masks {
		kept := 0
		for _, k := range mask {
			if k {
				kept++
			}
		}
		if kept != n/2 {
			t.Fatalf("sub-model %d kept %d features, want %d", m, kept, n/2)
		}
		if stats.SubModels[m].Features != n/2 {
			t.Fatalf("stats report %d features", stats.SubModels[m].Features)
		}
		// Masked features must have zero base rows.
		d := ens.Subs[m].Dim()
		for f, keep := range mask {
			if keep {
				continue
			}
			row := ens.Subs[m].Encoder.Base.F32[f*d : (f+1)*d]
			for _, v := range row {
				if v != 0 {
					t.Fatalf("sub-model %d masked feature %d has nonzero base", m, f)
				}
			}
		}
	}
}

func TestFusedModelWithMasksIgnoresMaskedFeatures(t *testing.T) {
	// The stacked inference model realizes feature sampling through zero
	// columns, as the paper describes.
	train, test := synthSplit(t, 57)
	cfg := smallConfig()
	cfg.SubModels = 2
	cfg.FeatureRatio = 0.5
	ens, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused := ens.Fuse()
	// Feature masked in *both* sub-models must have an all-zero base row.
	for f := 0; f < train.Features(); f++ {
		if ens.Masks[0][f] || ens.Masks[1][f] {
			continue
		}
		row := fused.Encoder.Base.Row(f)
		for _, v := range row {
			if v != 0 {
				t.Fatalf("feature %d masked everywhere but fused base nonzero", f)
			}
		}
	}
	_ = test
}

func TestPredictVoteReasonable(t *testing.T) {
	train, test := synthSplit(t, 58)
	ens, _, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	nProbe := min(300, test.Samples())
	for i := 0; i < nProbe; i++ {
		if ens.PredictVote(test.X.Row(i)) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(nProbe); acc < 0.6 {
		t.Fatalf("majority-vote accuracy %.3f; chance 0.2", acc)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, _, err := Train(nil, smallConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestTotalUpdatesPositive(t *testing.T) {
	train, _ := synthSplit(t, 59)
	_, stats, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUpdates() <= 0 {
		t.Fatal("no updates recorded")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOOBAccuracy(t *testing.T) {
	train, test := synthSplit(t, 60)
	ens, _, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	oob, evaluated := ens.OOBAccuracy(train)
	if evaluated == 0 {
		t.Fatal("no out-of-bag samples with α=0.6 bootstrap sampling")
	}
	// With α=0.6, each sample is out-of-bag for a sub-model with
	// probability (1 - 1/N)^{0.6N} ≈ e^{-0.6} ≈ 0.55, so most samples
	// should be evaluable.
	if frac := float64(evaluated) / float64(train.Samples()); frac < 0.8 {
		t.Fatalf("only %.2f of samples evaluable out-of-bag", frac)
	}
	// OOB accuracy must be a sane generalization estimate: close to the
	// held-out test accuracy.
	testAcc := ens.Accuracy(test)
	if oob < testAcc-0.1 || oob > testAcc+0.1 {
		t.Fatalf("OOB estimate %.3f far from test accuracy %.3f", oob, testAcc)
	}
}

func TestParallelTrainingDeterministic(t *testing.T) {
	// Concurrency must not perturb results: repeated runs are identical.
	train, _ := synthSplit(t, 61)
	cfg := smallConfig()
	cfg.SubModels = 8
	cfg.Dim = 2048
	a, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range a.Subs {
		for i := range a.Subs[m].Classes.F32 {
			if a.Subs[m].Classes.F32[i] != b.Subs[m].Classes.F32[i] {
				t.Fatalf("sub-model %d differs between runs at %d", m, i)
			}
		}
	}
}

func TestSampleIdxRecorded(t *testing.T) {
	train, _ := synthSplit(t, 62)
	ens, _, err := Train(train, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for m, idx := range ens.SampleIdx {
		if len(idx) != int(0.6*float64(train.Samples())) {
			t.Fatalf("sub-model %d recorded %d indices", m, len(idx))
		}
		for _, i := range idx {
			if i < 0 || i >= train.Samples() {
				t.Fatalf("sub-model %d index %d out of range", m, i)
			}
		}
	}
}

func TestEnsembleSaveLoad(t *testing.T) {
	train, test := synthSplit(t, 63)
	cfg := smallConfig()
	ens, _, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ensemble.hde")
	if err := ens.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEnsemble(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != ens.Config {
		t.Fatalf("config changed: %+v vs %+v", got.Config, ens.Config)
	}
	if len(got.Subs) != len(ens.Subs) {
		t.Fatalf("%d sub-models", len(got.Subs))
	}
	// The reloaded ensemble must fuse to an identical model.
	a := ens.Fuse()
	b := got.Fuse()
	for i := 0; i < min(100, test.Samples()); i++ {
		if a.Predict(test.X.Row(i)) != b.Predict(test.X.Row(i)) {
			t.Fatalf("reloaded ensemble diverges at %d", i)
		}
	}
	// OOB evaluation must keep working (indices survived).
	oobA, nA := ens.OOBAccuracy(train)
	oobB, nB := got.OOBAccuracy(train)
	if nA != nB || oobA != oobB {
		t.Fatalf("OOB changed: %.3f/%d vs %.3f/%d", oobA, nA, oobB, nB)
	}
}

func TestLoadEnsembleRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.hde")
	if err := os.WriteFile(path, []byte("not an ensemble"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEnsemble(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
