package bagging

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"hdcedge/internal/hdc"
	"hdcedge/internal/tensor"
)

// Ensemble binary format (little endian): magic "HDE1", then the config
// (subModels u32, dim u32, iterations u32, datasetRatio f64,
// featureRatio f64, learningRate f32, nonlinear u8, seed u64), then per
// sub-model: n u32, d' u32, k u32, base [n*d']f32, classes [k*d']f32,
// mask [n]u8, sampleCount u32 + indices []u32.

const ensembleMagic = "HDE1"

// Save writes the full ensemble — sub-models, feature masks and bootstrap
// indices — so out-of-bag evaluation and re-fusion work after reload.
func (e *Ensemble) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := e.write(w); err != nil {
		f.Close()
		return fmt.Errorf("bagging: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (e *Ensemble) write(w *bufio.Writer) error {
	if _, err := w.WriteString(ensembleMagic); err != nil {
		return err
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		w.Write(b[:])
	}
	cfg := e.Config
	putU32(uint32(cfg.SubModels))
	putU32(uint32(cfg.Dim))
	putU32(uint32(cfg.Iterations))
	putU64(math.Float64bits(cfg.DatasetRatio))
	putU64(math.Float64bits(cfg.FeatureRatio))
	putU32(math.Float32bits(cfg.LearningRate))
	if cfg.Nonlinear {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	putU64(cfg.Seed)

	for m, sub := range e.Subs {
		n := sub.Encoder.Features()
		dp := sub.Dim()
		k := sub.K()
		putU32(uint32(n))
		putU32(uint32(dp))
		putU32(uint32(k))
		for _, v := range sub.Encoder.Base.F32 {
			putU32(math.Float32bits(v))
		}
		for _, v := range sub.Classes.F32 {
			putU32(math.Float32bits(v))
		}
		for _, keep := range e.Masks[m] {
			if keep {
				w.WriteByte(1)
			} else {
				w.WriteByte(0)
			}
		}
		putU32(uint32(len(e.SampleIdx[m])))
		for _, idx := range e.SampleIdx[m] {
			putU32(uint32(idx))
		}
	}
	return nil
}

// LoadEnsemble reads an ensemble written by Save.
func LoadEnsemble(path string) (*Ensemble, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != ensembleMagic {
		return nil, fmt.Errorf("bagging: bad ensemble magic %q in %s", mg, path)
	}
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	getU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}

	var cfg Config
	v32, err := getU32()
	if err != nil {
		return nil, err
	}
	cfg.SubModels = int(v32)
	if v32, err = getU32(); err != nil {
		return nil, err
	}
	cfg.Dim = int(v32)
	if v32, err = getU32(); err != nil {
		return nil, err
	}
	cfg.Iterations = int(v32)
	v64, err := getU64()
	if err != nil {
		return nil, err
	}
	cfg.DatasetRatio = math.Float64frombits(v64)
	if v64, err = getU64(); err != nil {
		return nil, err
	}
	cfg.FeatureRatio = math.Float64frombits(v64)
	if v32, err = getU32(); err != nil {
		return nil, err
	}
	cfg.LearningRate = math.Float32frombits(v32)
	nl, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	cfg.Nonlinear = nl == 1
	if cfg.Seed, err = getU64(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SubModels > 1<<12 {
		return nil, fmt.Errorf("bagging: implausible sub-model count %d", cfg.SubModels)
	}

	e := &Ensemble{Config: cfg}
	readF32s := func(dst []float32) error {
		for i := range dst {
			bits, err := getU32()
			if err != nil {
				return err
			}
			dst[i] = math.Float32frombits(bits)
		}
		return nil
	}
	for m := 0; m < cfg.SubModels; m++ {
		n, err := getU32()
		if err != nil {
			return nil, err
		}
		dp, err := getU32()
		if err != nil {
			return nil, err
		}
		k, err := getU32()
		if err != nil {
			return nil, err
		}
		if n == 0 || dp == 0 || k < 2 || n > 1<<20 || dp > 1<<24 || k > 1<<16 {
			return nil, fmt.Errorf("bagging: implausible sub-model %d dims n=%d d'=%d k=%d", m, n, dp, k)
		}
		base := tensor.New(tensor.Float32, int(n), int(dp))
		if err := readF32s(base.F32); err != nil {
			return nil, err
		}
		classes := tensor.New(tensor.Float32, int(k), int(dp))
		if err := readF32s(classes.F32); err != nil {
			return nil, err
		}
		mask := make([]bool, n)
		for i := range mask {
			b, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			mask[i] = b == 1
		}
		count, err := getU32()
		if err != nil {
			return nil, err
		}
		if count > 1<<26 {
			return nil, fmt.Errorf("bagging: implausible sample count %d", count)
		}
		idx := make([]int, count)
		for i := range idx {
			v, err := getU32()
			if err != nil {
				return nil, err
			}
			idx[i] = int(v)
		}
		e.Subs = append(e.Subs, &hdc.Model{
			Encoder: &hdc.Encoder{Base: base, Nonlinear: cfg.Nonlinear},
			Classes: classes,
		})
		e.Masks = append(e.Masks, mask)
		e.SampleIdx = append(e.SampleIdx, idx)
	}
	return e, nil
}
