// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the framework so that every experiment is
// reproducible from a single seed.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by the xoshiro authors. Streams derived with Split are
// statistically independent, which lets sub-models in a bagging ensemble
// draw their base hypervectors and bootstrap samples concurrently without
// sharing mutable state.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s [4]uint64

	// cached second Gaussian from the Box-Muller pair
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from seed via SplitMix64, so that nearby
// seeds still produce uncorrelated initial states.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's.
// It advances r once.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// transform. Pairs are cached, so successive calls alternate between the
// two halves of each transform.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements in place using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillNormal fills dst with standard normal samples.
func (r *RNG) FillNormal(dst []float32) {
	for i := range dst {
		dst[i] = float32(r.NormFloat64())
	}
}

// FillUniform fills dst with uniform samples in [lo, hi).
func (r *RNG) FillUniform(dst []float32, lo, hi float32) {
	span := float64(hi - lo)
	for i := range dst {
		dst[i] = lo + float32(r.Float64()*span)
	}
}

// SampleWithReplacement returns n indices drawn uniformly with replacement
// from [0, pop). It is the bootstrap sampling primitive used by bagging.
func (r *RNG) SampleWithReplacement(pop, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(pop)
	}
	return idx
}

// SampleWithoutReplacement returns n distinct indices from [0, pop) in
// random order. It panics when n > pop.
func (r *RNG) SampleWithoutReplacement(pop, n int) []int {
	if n > pop {
		panic("rng: sample larger than population")
	}
	p := r.Perm(pop)
	return p[:n]
}
