package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs in 1000 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 generator repeated values: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormFloat64Symmetry(t *testing.T) {
	r := New(9)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.NormFloat64() > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("positive fraction %v, want ~0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestSampleWithReplacementRange(t *testing.T) {
	r := New(12)
	idx := r.SampleWithReplacement(50, 500)
	if len(idx) != 500 {
		t.Fatalf("got %d samples", len(idx))
	}
	for _, v := range idx {
		if v < 0 || v >= 50 {
			t.Fatalf("index %d out of range", v)
		}
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := New(13)
	idx := r.SampleWithoutReplacement(100, 60)
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid sample %v", idx)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(5, 6)
}

func TestFillNormalLength(t *testing.T) {
	r := New(14)
	buf := make([]float32, 4096)
	r.FillNormal(buf)
	nonzero := 0
	for _, v := range buf {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 4000 {
		t.Fatalf("FillNormal left %d zeros", len(buf)-nonzero)
	}
}

func TestFillUniformRange(t *testing.T) {
	r := New(15)
	buf := make([]float32, 1000)
	r.FillUniform(buf, -2, 3)
	for _, v := range buf {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform fill out of range: %v", v)
		}
	}
}

// Property: Intn output is always within bounds for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always yields a bijection for arbitrary seeds.
func TestQuickPermBijection(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: two generators from the same seed agree on any prefix.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(steps); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
