package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/metrics"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertSnapshotMatchesReport pins the acceptance invariant: at quiescence
// the registry snapshot and ServeReport are the same numbers — one source
// of truth, not two sets of books.
func assertSnapshotMatchesReport(t *testing.T, s *Server) {
	t.Helper()
	rep := s.Report()
	snap := s.Metrics().Snapshot()
	counters := map[string]int{
		"hdc_serve_submitted_total":                rep.Submitted,
		"hdc_serve_admitted_total":                 rep.Admitted,
		"hdc_serve_completed_total":                rep.Completed,
		`hdc_serve_shed_total{cause="queue_full"}`: rep.ShedQueueFull,
		`hdc_serve_shed_total{cause="draining"}`:   rep.ShedDraining,
		"hdc_serve_deadline_exceeded_total":        rep.DeadlineExceeded,
		"hdc_serve_cancelled_total":                rep.Cancelled,
		"hdc_serve_drain_forced_total":             rep.DrainForced,
		"hdc_serve_failed_total":                   rep.Failed,
		"hdc_serve_host_fallback_total":            rep.HostFallback,
		"hdc_serve_batch_invokes_total":            rep.BatchInvokes,
		"hdc_serve_batch_rows_total":               rep.BatchRows,
	}
	for name, want := range counters {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("snapshot %s = %d, report says %d", name, got, want)
		}
	}
	if got := snap.Gauges["hdc_serve_queue_depth_max"]; got != int64(rep.MaxQueueDepth) {
		t.Errorf("snapshot queue_depth_max = %d, report says %d", got, rep.MaxQueueDepth)
	}
	if got := snap.Gauges["hdc_serve_batch_rows_max"]; got != int64(rep.MaxBatchRows) {
		t.Errorf("snapshot batch_rows_max = %d, report says %d", got, rep.MaxBatchRows)
	}
	hists := map[string]*metrics.Histogram{
		"hdc_serve_latency_seconds":        rep.Latency,
		"hdc_serve_queue_wait_seconds":     rep.QueueWait,
		"hdc_serve_per_sample_sim_seconds": rep.PerSample,
	}
	for name, want := range hists {
		if got := snap.Histograms[name]; !reflect.DeepEqual(got, want) {
			t.Errorf("snapshot histogram %s disagrees with report (count %d vs %d)",
				name, got.Count(), want.Count())
		}
	}
}

// TestBatchAllMembersCancelledReleasesWorker is the regression test for the
// merged-invoke cancellation bug: a coalesced batch ran under a context
// detached from its members, so cancelling every member left the invoke
// (and its pace interval) holding the worker until it finished on its own.
// With the fix, the last member's cancellation cancels the merged context,
// the worker frees immediately, and the breaker is not penalized.
func TestBatchAllMembersCancelledReleasesWorker(t *testing.T) {
	const pace = 600 * time.Millisecond
	p, cm, ds := serveBatchModel(t, 4)
	s, err := New(p, cm, Config{
		Devices: 1, Policy: fastPolicy(),
		MaxBatch: 4, PacePerInvoke: pace,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the worker with a blocker request so the next four coalesce
	// into one merged invoke while it paces.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Do(context.Background(), rowFill(ds, 0), nil); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return s.Report().BatchInvokes >= 1 }, "blocker invoke")

	// Queue four cancellable members; they form the next batch.
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 4)
	for i := 1; i <= 4; i++ {
		fill := rowFill(ds, i)
		go func() {
			_, err := s.Do(ctx, fill, nil)
			errs <- err
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return s.Report().Admitted >= 5 }, "members queued")
	// The merged invoke completes instantly in wall-clock; >= 2 means it
	// ran and the worker is inside the pace interval.
	waitFor(t, 5*time.Second, func() bool { return s.Report().BatchInvokes >= 2 }, "merged invoke")
	if got := s.Report().MaxBatchRows; got != 4 {
		t.Fatalf("members did not coalesce: max batch rows %d, want 4", got)
	}

	// Cancel every member mid-pace. The worker must free well before the
	// pace interval elapses. Each member settles as cancelled, or — when
	// the freed worker wins the settle race — with the result its invoke
	// had already computed; both are legitimate, the hang is not.
	cancel()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("member settled with %v, want nil or context.Canceled", err)
		}
	}
	start := time.Now()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if took := time.Since(start); took > pace/2 {
		t.Fatalf("drain took %v: cancelled batch kept its worker occupied (pace %v)", took, pace)
	}
	wg.Wait()

	rep := s.Report()
	if rep.Cancelled+rep.Completed != 5 { // blocker + 4 members
		t.Fatalf("cancelled %d + completed %d != 5\n%s", rep.Cancelled, rep.Completed, rep)
	}
	if rep.Reliability.BreakerTrips != 0 || rep.Reliability.LinkFaults != 0 {
		t.Fatalf("cancellation penalized the breaker: %+v", rep.Reliability)
	}
}

// TestLiveSnapshotMidServe checks the live-observability acceptance: while
// the fleet is saturated, a snapshot exposes queue depth, shed counts,
// per-backend invoke telemetry, and breaker states — without waiting for
// the run to finish.
func TestLiveSnapshotMidServe(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{
		Devices: 1, Policy: fastPolicy(),
		QueueCapacity: 2, PacePerInvoke: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	do := func(i int) {
		defer wg.Done()
		s.Do(ctx, rowFill(ds, i), nil)
	}
	wg.Add(1)
	go do(0) // blocker: in-flight, pacing
	waitFor(t, 5*time.Second, func() bool { return s.Report().BatchInvokes >= 1 }, "blocker invoke")
	wg.Add(2)
	go do(1)
	go do(2) // fill the queue
	waitFor(t, 5*time.Second, func() bool {
		return s.Metrics().Snapshot().Gauges["hdc_serve_queue_depth"] == 2
	}, "queue depth 2")
	// Two more must shed on the full queue.
	for i := 3; i <= 4; i++ {
		var shed *ShedError
		if _, err := s.Do(context.Background(), rowFill(ds, i), nil); !errors.As(err, &shed) {
			t.Fatalf("request %d: got %v, want ShedError", i, err)
		}
	}

	snap := s.Metrics().Snapshot()
	if got := snap.Gauges["hdc_serve_queue_depth"]; got != 2 {
		t.Errorf("live queue depth %d, want 2", got)
	}
	if got := snap.Counters[`hdc_serve_shed_total{cause="queue_full"}`]; got != 2 {
		t.Errorf("live shed count %d, want 2", got)
	}
	backendHist := snap.Histograms[`hdc_backend_invoke_sim_seconds{worker="0",backend="tpu"}`]
	if backendHist == nil || backendHist.Count() < 1 {
		t.Errorf("per-backend invoke histogram missing or empty mid-serve: %v", snap.Names())
	}
	if got, ok := snap.Gauges[`hdc_runner_breaker_state{worker="0",backend="tpu"}`]; !ok {
		t.Errorf("breaker state gauge missing: %v", snap.Names())
	} else if got != 0 {
		t.Errorf("healthy breaker state gauge = %d, want 0 (closed)", got)
	}

	cancel()
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	assertSnapshotMatchesReport(t, s)
}

// TestSnapshotMonotoneUnderSaturatedFleet hammers Registry.Snapshot from a
// reader goroutine while a heterogeneous TPU+CPU fleet serves a saturating
// open loop, asserting counters and histogram counts never move backwards,
// and that the final snapshot agrees with the final ServeReport exactly.
// Run under -race, this is also the data-race proof for the lock-free path.
func TestSnapshotMonotoneUnderSaturatedFleet(t *testing.T) {
	p, cm, ds := serveBatchModel(t, 4)
	s, err := New(p, cm, Config{
		Fleet: FleetSpec{"tpu", "cpu"}, Policy: fastPolicy(),
		QueueCapacity: 8, MaxBatch: 4, BatchWindow: 200 * time.Microsecond,
		PacePerInvoke: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		prevC := map[string]int64{}
		prevH := map[string]int{}
		for {
			snap := s.Metrics().Snapshot()
			for name, v := range prevC {
				if snap.Counters[name] < v {
					snapErr = fmt.Errorf("counter %s went backwards: %d -> %d", name, v, snap.Counters[name])
					return
				}
			}
			for name, v := range prevH {
				h := snap.Histograms[name]
				if h == nil || h.Count() < v {
					snapErr = fmt.Errorf("histogram %s count went backwards from %d", name, v)
					return
				}
			}
			for name, v := range snap.Counters {
				prevC[name] = v
			}
			for name, h := range snap.Histograms {
				prevH[name] = h.Count()
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	const n = 300
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		fill := rowFill(ds, i%ds.Samples())
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Sheds are expected at this offered load; every outcome counts.
			s.Do(context.Background(), fill, nil)
		}()
		if i%8 == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	rep := s.Report()
	if rep.Settled() != rep.Submitted {
		t.Fatalf("%d submitted, %d settled\n%s", rep.Submitted, rep.Settled(), rep)
	}
	assertSnapshotMatchesReport(t, s)

	// Both backend classes must have streamed per-worker telemetry.
	snap := s.Metrics().Snapshot()
	for i, class := range []string{"tpu", "cpu"} {
		name := fmt.Sprintf("hdc_backend_invokes_total{worker=%q,backend=%q}", fmt.Sprint(i), class)
		if snap.Counters[name] == 0 {
			t.Errorf("no live invokes recorded for %s: %v", name, snap.Names())
		}
	}
}

// TestTraceRing checks the per-request span ring: completed requests carry
// the full admit→queue→batch-hold→invoke→settle breakdown with worker,
// backend and batch annotations; the ring is bounded.
func TestTraceRing(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{Devices: 1, Policy: fastPolicy(), TraceDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 0; i < n; i++ {
		if _, err := s.Do(context.Background(), rowFill(ds, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	traces := s.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4 (depth)", len(traces))
	}
	for i, tr := range traces {
		if i > 0 && tr.ID <= traces[i-1].ID {
			t.Errorf("trace IDs out of order: %d then %d", traces[i-1].ID, tr.ID)
		}
		if tr.Err != "" {
			t.Errorf("trace %d carries error %q on a clean run", tr.ID, tr.Err)
		}
		if tr.Worker != 0 || tr.Backend != "tpu" || tr.Batch != 1 {
			t.Errorf("trace %d annotations off: %+v", tr.ID, tr)
		}
		if tr.Breaker != "closed" {
			t.Errorf("trace %d breaker %q, want closed", tr.ID, tr.Breaker)
		}
		if tr.Total < tr.Queue+tr.BatchHold+tr.Invoke {
			t.Errorf("trace %d spans exceed total: %+v", tr.ID, tr)
		}
	}
	// The ring keeps the most recent settles: the last trace is request n.
	if last := traces[len(traces)-1].ID; last != n {
		t.Errorf("newest trace ID %d, want %d", last, n)
	}

	// Disabled tracing stores nothing.
	s2, err := New(p, cm, Config{Devices: 1, Policy: fastPolicy(), TraceDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Do(context.Background(), rowFill(ds, 0), nil); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if got := s2.Traces(); len(got) != 0 {
		t.Fatalf("disabled tracing stored %d traces", len(got))
	}
}

// TestHTTPEndpoints drives the observability handler end to end: Prometheus
// exposition, JSON snapshot, and trace dump.
func TestHTTPEndpoints(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{Devices: 1, Policy: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Do(context.Background(), rowFill(ds, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec
	}

	prom := get("/metrics").Body.String()
	for _, want := range []string{
		"# TYPE hdc_serve_submitted_total counter",
		"hdc_serve_submitted_total 3",
		`hdc_backend_invoke_sim_seconds_count{worker="0",backend="tpu"} 3`,
		`hdc_runner_breaker_state{worker="0",backend="tpu"} 0`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, prom)
		}
	}

	var snap snapshotJSON
	if err := json.Unmarshal(get("/snapshot").Body.Bytes(), &snap); err != nil {
		t.Fatalf("/snapshot JSON: %v", err)
	}
	if snap.Health != "healthy" || snap.Counters["hdc_serve_completed_total"] != 3 {
		t.Errorf("/snapshot content off: health %q counters %v", snap.Health, snap.Counters)
	}
	if hs, ok := snap.Histograms["hdc_serve_latency_seconds"]; !ok || hs.Count != 3 {
		t.Errorf("/snapshot latency summary off: %+v (present %v)", hs, ok)
	}

	var traces []Trace
	if err := json.Unmarshal(get("/traces").Body.Bytes(), &traces); err != nil {
		t.Fatalf("/traces JSON: %v", err)
	}
	if len(traces) != 3 || traces[0].Backend != "tpu" {
		t.Errorf("/traces content off: %+v", traces)
	}

	if rec := get("/debug/pprof/cmdline"); rec.Body.Len() == 0 {
		t.Error("/debug/pprof/cmdline returned no body")
	}
}
