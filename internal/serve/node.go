package serve

import (
	"context"

	"hdcedge/internal/metrics"
	"hdcedge/internal/tensor"
)

// Node is the submit surface of one serving instance that a routing tier
// fronts: request submission, the health and metrics signals the router's
// probes read, and a drain hook so the router can evict a node and release
// its in-flight work. *Server implements it directly; chaos wrappers (see
// internal/router) implement it by interposing on a wrapped Node, which is
// what lets node-grade failures be injected at the server boundary without
// the server knowing.
type Node interface {
	// Do submits one request and blocks until it settles. The semantics
	// are exactly Server.Do's: fill populates the input tensor (idempotent
	// — it may run more than once under recovery), consume reads the
	// output tensor before the worker reuses it.
	Do(ctx context.Context, fill func(in *tensor.Tensor), consume func(out *tensor.Tensor)) (Result, error)

	// Submit is Do with tenancy: the request carries its tenant and model
	// annotations. Submit(ctx, Request{Fill: f, Consume: c}) is exactly
	// Do(ctx, f, c).
	Submit(ctx context.Context, req Request) (Result, error)

	// Health is the node-derived health state (from the per-worker
	// breakers), one of the snapshot signals a router's prober folds into
	// its up/degraded/down decision.
	Health() Health

	// Metrics is the node's live registry; a router reads queue depth and
	// breaker gauges from its snapshots.
	Metrics() *metrics.Registry

	// Drain stops admitting and releases queued and in-flight work,
	// bounded by the node's drain deadline. A router calls it when it
	// evicts a node and at shutdown.
	Drain(ctx context.Context) error
}

var _ Node = (*Server)(nil)
