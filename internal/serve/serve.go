// Package serve is the request-level serving runtime on top of
// ResilientRunner: a bounded admission queue with load shedding, per-request
// deadlines threaded as contexts through the invoke path, a worker pool
// dispatching across a fleet of heterogeneous execution backends (simulated
// Edge TPUs, host-CPU interpreters), per-backend circuit breakers feeding a
// server-level health state, and graceful drain on shutdown. See
// docs/serving.md for the admission, fleet and drain semantics.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdcedge/internal/backend"
	"hdcedge/internal/backend/binhd"
	"hdcedge/internal/backend/hostcpu"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/integrity"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/tensor"
)

// FleetSpec lists the backend class of each worker in dispatch order, e.g.
// {"tpu", "tpu", "cpu", "cpu"}. Supported classes are tpu.Name ("tpu"),
// hostcpu.Name ("cpu"), and binhd.Name ("bin" — the bit-packed binary HDC
// engine, which requires Config.Bipolar).
type FleetSpec []string

// knownFleetClass reports whether kind names a servable backend class.
func knownFleetClass(kind string) bool {
	return kind == tpu.Name || kind == hostcpu.Name || kind == binhd.Name
}

// FleetError reports a rejected fleet spec: which segment of which spec was
// bad and why. Segment is empty for spec-level faults (an empty spec).
type FleetError struct {
	Spec    string // the full spec as given
	Segment string // the offending "class=count" segment, "" for spec-level faults
	Reason  string
}

func (e *FleetError) Error() string {
	if e.Segment == "" {
		return fmt.Sprintf("serve: fleet spec %q: %s", e.Spec, e.Reason)
	}
	return fmt.Sprintf("serve: fleet spec %q segment %q: %s", e.Spec, e.Segment, e.Reason)
}

// ParseFleet parses a composition spec like "tpu=2,cpu=2" (classes in the
// given order, counts >= 1, each class at most once) into a FleetSpec.
// Empty segments, duplicate class keys, and zero or negative counts are
// rejected with a *FleetError rather than silently skipped or folded, so a
// typo'd spec cannot quietly under-provision a fleet.
func ParseFleet(spec string) (FleetSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, &FleetError{Spec: spec, Reason: "empty spec"}
	}
	var fleet FleetSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		trimmed := strings.TrimSpace(part)
		if trimmed == "" {
			return nil, &FleetError{Spec: spec, Segment: part, Reason: "empty segment"}
		}
		kind, countStr, ok := strings.Cut(trimmed, "=")
		kind = strings.TrimSpace(kind)
		count := 1
		if ok {
			n, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil {
				return nil, &FleetError{Spec: spec, Segment: trimmed, Reason: "count is not an integer"}
			}
			if n <= 0 {
				return nil, &FleetError{Spec: spec, Segment: trimmed,
					Reason: fmt.Sprintf("count %d must be at least 1", n)}
			}
			count = n
		}
		if !knownFleetClass(kind) {
			return nil, &FleetError{Spec: spec, Segment: trimmed,
				Reason: fmt.Sprintf("unknown backend class %q (have %q, %q, %q)", kind, tpu.Name, hostcpu.Name, binhd.Name)}
		}
		if seen[kind] {
			return nil, &FleetError{Spec: spec, Segment: trimmed,
				Reason: fmt.Sprintf("duplicate backend class %q", kind)}
		}
		seen[kind] = true
		for i := 0; i < count; i++ {
			fleet = append(fleet, kind)
		}
	}
	return fleet, nil
}

// String renders the fleet back into "tpu=2,cpu=2" form, classes in first-
// appearance order.
func (f FleetSpec) String() string {
	counts := map[string]int{}
	var order []string
	for _, kind := range f {
		if counts[kind] == 0 {
			order = append(order, kind)
		}
		counts[kind]++
	}
	parts := make([]string, 0, len(order))
	for _, kind := range order {
		parts = append(parts, fmt.Sprintf("%s=%d", kind, counts[kind]))
	}
	return strings.Join(parts, ",")
}

// Config sizes the serving runtime.
type Config struct {
	// Devices is the number of simulated accelerator devices (and worker
	// goroutines). Zero defaults to one. Ignored when Fleet is set.
	Devices int

	// Fleet, when non-empty, makes the worker pool heterogeneous: one
	// worker per entry, backed by that backend class. TPU workers keep the
	// host CPU as their degraded mode exactly as before; CPU workers run
	// the interpreter as their primary engine and have no degraded mode
	// (they cannot fault). Empty means Devices all-TPU workers — the
	// legacy, bit-identical configuration.
	Fleet FleetSpec

	// QueueCapacity bounds the admission queue; a request arriving at a
	// full queue is shed with a *ShedError rather than queued. Zero or
	// negative means unbounded (no shedding on depth).
	QueueCapacity int

	// DefaultDeadline is applied to requests whose context carries no
	// deadline of its own. Zero applies none.
	DefaultDeadline time.Duration

	// DrainDeadline bounds how long Drain waits for in-flight and queued
	// work before force-failing the stragglers. Zero waits forever.
	DrainDeadline time.Duration

	// Policy is the per-device recovery policy. Worker i uses Policy with
	// Seed+i so jitter streams stay independent; device 0 keeps the base
	// seed, so a one-device server is bit-identical to a direct runner.
	Policy pipeline.RecoveryPolicy

	// Plan is the fault plan armed on every device (Seed+i per device).
	// Plans, when it has exactly Devices entries, overrides Plan with a
	// distinct plan per device (for asymmetric-failure tests).
	Plan  edgetpu.FaultPlan
	Plans []edgetpu.FaultPlan

	// PacePerInvoke makes each worker occupy wall-clock time per invoke
	// (sleep after the simulated invoke), emulating real device occupancy
	// so that offered load beyond capacity actually queues. Zero disables
	// pacing: the simulated invoke is then wall-clock instantaneous.
	PacePerInvoke time.Duration

	// PaceScale adds PaceScale × the invoke's simulated total to the pace,
	// so worker occupancy tracks the cost model: a batched invoke then
	// occupies its worker barely longer than a single-row one and the
	// systolic amortization shows up as wall-clock throughput. Zero keeps
	// pacing flat per invoke.
	PaceScale float64

	// MaxBatch is how many queued requests one worker may coalesce into a
	// single device invoke (rows of one input tensor, one InvokeCtx). It
	// must not exceed the compiled model's batch capacity. Zero or one
	// serves one request per invoke — the pre-batching behavior.
	MaxBatch int

	// BatchWindow bounds how long a worker holds an underfull batch open
	// for more arrivals before dispatching it. Each queued request is held
	// at most half its remaining deadline slack, whichever is smaller, so
	// a request never misses its deadline waiting for a window to fill.
	// Zero dispatches immediately with whatever is queued (batching still
	// coalesces a backlog, but never waits for one).
	BatchWindow time.Duration

	// Metrics, when non-nil, is the registry the server streams its live
	// telemetry into (admission counters, queue depth, per-backend invoke
	// latency, breaker states). Nil gives the server a private registry;
	// either way it is reachable via Server.Metrics() and snapshottable at
	// any time, including mid-invoke.
	Metrics *metrics.Registry

	// TraceDepth bounds the per-request trace ring: the most recent
	// TraceDepth settled requests keep their span breakdown (see Trace).
	// Zero means DefaultTraceDepth; negative disables tracing.
	TraceDepth int

	// Bipolar is the sign-quantized model binary-HDC ("bin") workers
	// serve. Required when Fleet contains binhd.Name; ignored otherwise.
	// It must share the float encoder of the compiled model so a
	// bin-served answer comes from the same trained classifier, just in
	// its bit-packed deployment form.
	Bipolar *hdc.BipolarModel

	// Integrity, when non-nil and enabled, arms the silent-data-corruption
	// defense: each worker periodically scrubs its device-resident
	// parameters against golden checksums and runs canary known-answer
	// checks through the real invoke path, self-healing through the repair
	// ladder (segment re-upload → model reload → device reset →
	// quarantine). Nil or disabled leaves the serving path bit-identical
	// to a server without integrity support. In registry mode the policy's
	// canaries answer against the default model only; other models run
	// scrub-only unless their registry entry carries its own policy.
	Integrity *integrity.Policy

	// Registry, when non-nil, makes the server multi-model: requests may
	// name any registered model, workers bind models lazily by consulting
	// the registry, and each accelerated worker's on-chip parameter memory
	// is simulated — a miss pays the entry's deterministic re-setup cost,
	// billed into the invoke's WeightStream phase, and evicts under
	// MemPolicy. Nil serves the single compiled model passed to New — the
	// legacy, bit-identical configuration.
	Registry *registry.Registry

	// DefaultModel is the model served by requests that name none. Empty
	// means the first registered model. Ignored without Registry.
	DefaultModel string

	// MemBudget overrides the per-device on-chip parameter-memory budget
	// in bytes. Zero uses the device's own ParamMemBytes (8 MiB on the
	// default USB Edge TPU). Ignored without Registry.
	MemBudget int

	// MemPolicy selects the eviction policy under memory pressure
	// (EvictLRU by default; PinFirst is the static baseline the ablation
	// compares against). Ignored without Registry.
	MemPolicy registry.EvictPolicy

	// Tenants, when non-empty, makes admission multi-tenant: requests
	// carry a tenant name, each tenant gets its own bounded FIFO, and
	// dispatch follows strict priority classes with stride-based
	// weighted-fair queuing inside a class. Empty keeps the single global
	// FIFO — the legacy, bit-identical configuration.
	Tenants []TenantSpec
}

// Validate checks the configuration for sanity.
func (c Config) Validate() error {
	if c.Devices < 0 {
		return fmt.Errorf("serve: negative Devices %d", c.Devices)
	}
	if c.DefaultDeadline < 0 {
		return fmt.Errorf("serve: negative DefaultDeadline %v", c.DefaultDeadline)
	}
	if c.DrainDeadline < 0 {
		return fmt.Errorf("serve: negative DrainDeadline %v", c.DrainDeadline)
	}
	if c.PacePerInvoke < 0 {
		return fmt.Errorf("serve: negative PacePerInvoke %v", c.PacePerInvoke)
	}
	if c.PaceScale < 0 {
		return fmt.Errorf("serve: negative PaceScale %v", c.PaceScale)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: negative MaxBatch %d", c.MaxBatch)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("serve: negative BatchWindow %v", c.BatchWindow)
	}
	for i, kind := range c.Fleet {
		if !knownFleetClass(kind) {
			return fmt.Errorf("serve: fleet worker %d has unknown backend class %q", i, kind)
		}
		if kind == binhd.Name && c.Bipolar == nil {
			return fmt.Errorf("serve: fleet worker %d is %q but Config.Bipolar is nil", i, binhd.Name)
		}
	}
	if len(c.Fleet) > 0 && c.Devices > 0 && c.Devices != len(c.Fleet) {
		return fmt.Errorf("serve: Devices %d disagrees with %d-worker Fleet %q", c.Devices, len(c.Fleet), c.Fleet)
	}
	if len(c.Plans) != 0 && len(c.Plans) != c.workers() {
		return fmt.Errorf("serve: %d per-device plans for %d workers", len(c.Plans), c.workers())
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("serve: negative MemBudget %d", c.MemBudget)
	}
	seen := map[string]bool{}
	for i, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("serve: tenant %d has an empty name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight < 0 || t.Quota < 0 || t.Deadline < 0 || t.Priority < 0 {
			return fmt.Errorf("serve: tenant %q has a negative field: %+v", t.Name, t)
		}
	}
	if err := c.Integrity.Validate(); err != nil {
		return err
	}
	return nil
}

// workers returns the worker-pool size the config asks for.
func (c Config) workers() int {
	if len(c.Fleet) > 0 {
		return len(c.Fleet)
	}
	return max(c.Devices, 1)
}

// fleet returns the effective fleet composition: Fleet verbatim, or the
// legacy all-TPU pool.
func (c Config) fleet() FleetSpec {
	if len(c.Fleet) > 0 {
		return c.Fleet
	}
	fleet := make(FleetSpec, c.workers())
	for i := range fleet {
		fleet[i] = tpu.Name
	}
	return fleet
}

// ShedCause says why admission refused a request.
type ShedCause int

const (
	// ShedQueueFull: the bounded queue was at capacity.
	ShedQueueFull ShedCause = iota
	// ShedDraining: the server had stopped admitting for shutdown.
	ShedDraining
	// ShedTenantQuota: the request's tenant was at its per-tenant queued
	// quota, even though the global queue may have had room.
	ShedTenantQuota
)

// String renders the cause.
func (c ShedCause) String() string {
	switch c {
	case ShedQueueFull:
		return "queue full"
	case ShedDraining:
		return "draining"
	case ShedTenantQuota:
		return "tenant quota"
	}
	return fmt.Sprintf("shed(%d)", int(c))
}

// ShedError is returned by Do when admission refuses a request.
type ShedError struct{ Cause ShedCause }

func (e *ShedError) Error() string { return "serve: request shed: " + e.Cause.String() }

// DrainError marks work force-failed (or a drain cut short) by the drain
// deadline. Stage is "queued" for requests failed while still queued,
// "in-flight" for requests cancelled mid-invoke, and "deadline" on the
// error Drain itself returns.
type DrainError struct{ Stage string }

func (e *DrainError) Error() string { return "serve: drain deadline forced failure (" + e.Stage + ")" }

// Health is the server-level health derived from the per-device breakers.
type Health int

const (
	// Healthy: every device breaker is closed.
	Healthy Health = iota
	// Degraded: some but not all breakers are open or half-open.
	Degraded
	// Critical: no breaker is closed; everything serves from the host.
	Critical
)

// String renders the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// Result is what a completed request observed.
type Result struct {
	Timing    backend.Timing // simulated per-invoke timing (incl. recovery)
	OnHost    bool           // served by the primary backend's degraded mode
	Device    int            // worker index that served it
	Backend   string         // backend class of that worker ("tpu", "cpu")
	BatchSize int            // occupied rows of the invoke that served it
	QueueWait time.Duration  // wall-clock time spent queued
	Latency   time.Duration  // wall-clock admission → completion

	Tenant string        // tenant the request ran under ("" in legacy mode)
	Model  string        // model that served it ("" in legacy mode)
	Swap   time.Duration // re-setup billed because the model was not resident
}

// Request is one unit of work with its tenancy annotations. The zero
// Tenant/Model mean "the first tenant" and "the default model", so a
// Request{Fill: f, Consume: c} is exactly a legacy Do call.
type Request struct {
	// Tenant names the submitting tenant. Must be a configured tenant
	// when Config.Tenants is set; "" maps to the first tenant.
	Tenant string

	// Model names the registered model to run. "" means the default
	// model; non-empty names require Config.Registry.
	Model string

	// Fill populates the input tensor (may run more than once under
	// recovery; must be idempotent).
	Fill func(in *tensor.Tensor)

	// Consume, if non-nil, reads the output tensor before the worker
	// reuses it — copy out anything kept past the call.
	Consume func(out *tensor.Tensor)
}

// outcome is the settled fate of one request.
type outcome struct {
	res Result
	err error
	inv *invokeSpan // the invoke that produced it; nil when none ran
}

// request is one admitted unit of work.
type request struct {
	id      uint64 // admission sequence number (trace identity)
	ctx     context.Context
	cancel  context.CancelFunc
	fill    func(in *tensor.Tensor)
	consume func(out *tensor.Tensor)
	tenant  *tenantState // resolved admission tenant (never nil once admitted)
	model   string       // resolved model ID ("" in legacy mode)
	enq     time.Time
	deq     time.Time    // dequeue into a batch; zero while queued (under s.mu)
	res     chan outcome // buffered, cap 1; receives exactly one outcome
	settled atomic.Bool  // CAS gate: first settler wins
}

// workerStats is one worker's serving breakdown, aggregated per backend
// class into ServeReport.Backends. Guarded by worker.mu.
type workerStats struct {
	Invokes  int                // successful engine invokes
	Rows     int                // occupied rows summed across those invokes
	MaxRows  int                // largest single-invoke occupancy
	Requests int                // completed requests this worker settled
	SimTime  time.Duration      // simulated invoke time summed
	Busy     time.Duration      // wall-clock invoke + pacing occupancy
	Latency  *metrics.Histogram // e2e latency of requests served here
}

// modelBind is one worker's runner (and optional integrity checker) for
// one model. A legacy server has a single bind keyed ""; a registry-mode
// worker grows binds lazily as models are dispatched to it. Only the
// worker goroutine touches the runner/integ/loaded fields; the accounting
// fields are guarded by worker.mu.
type modelBind struct {
	id      string          // model ID ("" in legacy mode)
	version int             // registry entry version the runner was built from
	entry   *registry.Entry // nil in legacy mode
	runner  *pipeline.ResilientRunner
	integ   *integrity.Checker
	loaded  bool // host worker paid its one-time model-load bill

	// Guarded by worker.mu.
	report   pipeline.ReliabilityReport // snapshot after the last invoke
	requests int                        // completed requests served via this bind
	invokes  int                        // successful engine invokes
	swap     time.Duration              // re-setup billed on this worker for this model
}

// worker owns one backend slot of the pool and the per-model runners bound
// to it. Runners are not safe for concurrent use and are touched only by
// the worker goroutine; after every invoke the worker publishes a
// reliability snapshot under mu so Report can read it without blocking
// behind an in-flight invoke.
type worker struct {
	id    int
	name  string // backend class (tpu.Name, hostcpu.Name, binhd.Name)
	accel bool   // accelerated class: participates in device-memory simulation

	// cur is the currently bound model; binds caches every model this
	// worker has ever bound. Both are touched only by the worker goroutine
	// (cur is set once in New before the loop starts).
	cur   *modelBind
	binds map[string]*modelBind

	// mem simulates this worker's on-chip parameter memory in registry
	// mode (nil otherwise, and for host workers).
	mem *registry.DeviceMemory

	// policy/plan/labels are the positional seeds and metric labels the
	// worker builds lazy binds with.
	policy pipeline.RecoveryPolicy
	plan   edgetpu.FaultPlan
	labels string

	state atomic.Int32 // pipeline.BreakerState of cur, updated after every invoke

	mu    sync.Mutex
	stats workerStats

	// invokeMu guards invokeCancel, the cancel func of the in-flight
	// batched invoke's merged context; the drain force path fires it so a
	// multi-request invoke (or an integrity maintenance pass) cannot
	// outlive the drain deadline.
	invokeMu     sync.Mutex
	invokeCancel context.CancelFunc

	// rowViews caches per-row views of the engine tensors the worker
	// scatters to, keyed by the backing tensor (which changes when the
	// runner reloads the model or switches to the host interpreter). Only
	// the worker goroutine touches it.
	rowViews map[*tensor.Tensor][]*tensor.Tensor
}

// rowView returns a cached single-row view of t ([1, ...] at row i).
func (w *worker) rowView(t *tensor.Tensor, i int) *tensor.Tensor {
	if w.rowViews == nil {
		w.rowViews = make(map[*tensor.Tensor][]*tensor.Tensor)
	}
	vs, ok := w.rowViews[t]
	if !ok {
		vs = make([]*tensor.Tensor, t.Shape[0])
		w.rowViews[t] = vs
	}
	if vs[i] == nil {
		vs[i] = t.ViewRows(i, i+1)
	}
	return vs[i]
}

// Server is the serving runtime. Create with New; shut down with Drain or
// Close. All methods are safe for concurrent use.
type Server struct {
	cfg      Config
	p        pipeline.Platform // platform lazy binds are built against
	defModel string            // resolved default model ID ("" in legacy mode)
	golden   *integrity.Golden // legacy-mode shared golden (nil in registry mode)
	workers  []*worker
	met      *serveMetrics // live registry handles (one source of truth)
	traces   *traceRing
	reqID    atomic.Uint64 // admission sequence for trace identity
	forced   atomic.Bool   // drain deadline fired: cancellations are force-failures

	mu       sync.Mutex
	cond     *sync.Cond
	sched    *scheduler            // per-tenant queues; single anonymous FIFO in legacy mode
	pending  map[*request]struct{} // admitted, not yet settled
	draining bool
	wg       sync.WaitGroup
}

// counters is the admission/outcome half of ServeReport. Since the live
// registry became the one source of truth it is no longer the server's
// working state: Report() materializes it from the registry handles, so the
// report and a concurrent Snapshot can never disagree.
type counters struct {
	Submitted        int
	Admitted         int
	Completed        int
	ShedQueueFull    int
	ShedDraining     int
	ShedTenantQuota  int
	DeadlineExceeded int
	Cancelled        int
	DrainForced      int
	Failed           int
	HostFallback     int
	MaxQueueDepth    int
	BatchInvokes     int // successful device invokes (batched or single)
	BatchRows        int // occupied rows summed across those invokes
	MaxBatchRows     int // largest single-invoke occupancy observed
	Latency          *metrics.Histogram
	QueueWait        *metrics.Histogram
	PerSample        *metrics.Histogram // simulated compute time per sample row
}

// New builds a server over the configured fleet — by default cfg.Devices
// simulated accelerator workers, each loaded with cm and armed with its
// fault plan; with cfg.Fleet set, a heterogeneous mix of accelerator and
// host-CPU workers — and starts the worker pool. With cfg.Registry set, cm
// may be nil: the registry's default model takes its place, every worker
// pre-binds it (the construction-time model upload the single-model server
// performs), and further models bind lazily as requests name them.
func New(p pipeline.Platform, cm *edgetpu.CompiledModel, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == (pipeline.RecoveryPolicy{}) {
		cfg.Policy = pipeline.DefaultRecoveryPolicy()
	}
	n := cfg.workers()
	fleet := cfg.fleet()
	hasBin := false
	for _, kind := range fleet {
		hasBin = hasBin || kind == binhd.Name
	}

	// Resolve the default model: in registry mode it stands in for cm.
	var defEntry *registry.Entry
	defModel := ""
	if cfg.Registry != nil {
		ids := cfg.Registry.IDs()
		if len(ids) == 0 {
			return nil, fmt.Errorf("serve: registry holds no models")
		}
		defModel = cfg.DefaultModel
		if defModel == "" {
			defModel = ids[0]
		}
		e, ok := cfg.Registry.Get(defModel)
		if !ok {
			return nil, fmt.Errorf("serve: default model %q is not registered", defModel)
		}
		defEntry = e
		if cm == nil {
			cm = e.Compiled
		}
		for _, id := range ids {
			ent, _ := cfg.Registry.Get(id)
			if err := checkServable(ent.ID, ent.Compiled, cfg.MaxBatch); err != nil {
				return nil, err
			}
			if hasBin && ent.Bipolar == nil {
				return nil, fmt.Errorf("serve: fleet has %q workers but model %q has no bipolar form", binhd.Name, id)
			}
		}
	} else {
		if cfg.DefaultModel != "" {
			return nil, fmt.Errorf("serve: DefaultModel %q without a Registry", cfg.DefaultModel)
		}
		if cm == nil {
			return nil, fmt.Errorf("serve: nil compiled model and no registry")
		}
		if err := checkServable(cm.Model.Name, cm, cfg.MaxBatch); err != nil {
			return nil, err
		}
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		p:        p,
		defModel: defModel,
		pending:  make(map[*request]struct{}),
		met:      newServeMetrics(reg),
		traces:   newTraceRing(cfg.TraceDepth),
	}
	// The legacy golden integrity reference is computed once from the
	// compiled model and shared read-only across all workers; registry-mode
	// goldens live per entry and are computed on first bind.
	if cfg.Registry == nil && cfg.Integrity.Enabled() && cfg.Integrity.ScrubInterval > 0 {
		var err error
		if s.golden, err = integrity.ComputeGolden(cm); err != nil {
			return nil, err
		}
	}
	s.sched = newScheduler(cfg.Tenants)
	if len(cfg.Tenants) > 0 {
		for _, t := range s.sched.tenants {
			t.met = newTenantMetrics(reg, t.spec.Name)
		}
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < n; i++ {
		// Every worker takes its positional seed offsets, whatever its class,
		// so swapping one worker's class never re-seeds its neighbours.
		policy := cfg.Policy
		policy.Seed += uint64(i)
		plan := cfg.Plan
		if len(cfg.Plans) == n {
			plan = cfg.Plans[i]
		} else {
			plan.Seed += uint64(i)
		}
		w := &worker{
			id: i, name: fleet[i], accel: fleet[i] == tpu.Name,
			policy: policy, plan: plan,
			labels: fmt.Sprintf("worker=%q,backend=%q", strconv.Itoa(i), fleet[i]),
			binds:  map[string]*modelBind{},
			stats:  workerStats{Latency: metrics.NewHistogram()},
		}
		if cfg.Registry != nil && w.accel {
			budget := cfg.MemBudget
			if budget == 0 {
				budget = defEntry.Compiled.Config.ParamMemBytes
			}
			mem, err := cfg.Registry.NewDeviceMemory(i, budget, cfg.MemPolicy)
			if err != nil {
				return nil, err
			}
			mem.Instrument(reg, w.labels)
			w.mem = mem
		}
		b, err := s.buildBind(w, defModel, defEntry, cm)
		if err != nil {
			return nil, fmt.Errorf("serve: worker %d (%s): %w", i, fleet[i], err)
		}
		w.cur = b
		w.binds[defModel] = b
		// The construction-time bind is the unbilled initial model load,
		// for host silicon exactly as Preload is for device memory.
		b.loaded = true
		if w.mem != nil {
			// The default model uploads at construction, exactly like the
			// single-model server's LoadModel: resident from the start, no
			// re-setup bill on its first request.
			w.mem.Preload(defEntry)
		}
		s.workers = append(s.workers, w)
	}
	s.wg.Add(n)
	for _, w := range s.workers {
		go s.workerLoop(w)
	}
	return s, nil
}

// checkServable validates one model against the batching config.
func checkServable(name string, cm *edgetpu.CompiledModel, maxBatch int) error {
	if maxBatch <= 1 {
		return nil
	}
	if capacity := cm.BatchCapacity(); maxBatch > capacity {
		return fmt.Errorf("serve: MaxBatch %d exceeds model %q compiled batch capacity %d", maxBatch, name, capacity)
	}
	if !cm.Model.RowSliceable() {
		return fmt.Errorf("serve: model %q is not row-sliceable; cannot micro-batch", name)
	}
	return nil
}

// buildBind constructs one worker's runner (and integrity checker) for one
// model. Called from New for the default model and from the worker
// goroutine for lazy binds; it touches no shared server state beyond the
// (concurrency-safe) metrics registry.
func (s *Server) buildBind(w *worker, id string, e *registry.Entry, cm *edgetpu.CompiledModel) (*modelBind, error) {
	bip := s.cfg.Bipolar
	version := 0
	if e != nil {
		cm = e.Compiled
		bip = e.Bipolar
		version = e.Version
	}
	var r *pipeline.ResilientRunner
	var err error
	switch w.name {
	case hostcpu.Name:
		// Host-CPU workers run the interpreter as their primary engine
		// with no degraded mode; fault plans are accelerator-only and do
		// not apply.
		var prim *hostcpu.Backend
		if prim, err = hostcpu.New(s.p.Host, cm.Model); err == nil {
			r, err = pipeline.WrapBackends(prim, nil, w.policy)
		}
	case binhd.Name:
		// Binary-HDC workers serve the bit-packed model on host silicon
		// at the compiled batch capacity, so row coalescing and the
		// MaxBatch validation hold fleet-wide. Like hostcpu they cannot
		// fault and have no degraded mode.
		var prim *binhd.Backend
		if prim, err = binhd.New(s.p.Host, bip, cm.BatchCapacity()); err == nil {
			r, err = pipeline.WrapBackends(prim, nil, w.policy)
		}
	default:
		r, err = pipeline.NewResilientRunner(s.p, cm, w.plan, w.policy)
	}
	if err != nil {
		return nil, err
	}
	// Stream this worker's reliability events and its backend's invoke
	// telemetry into the shared registry, labelled per worker (and per
	// model in registry mode) so the whole fleet coexists in one namespace.
	labels := w.labels
	if id != "" {
		labels += fmt.Sprintf(",model=%q", id)
	}
	r.Instrument(s.met.reg, labels)
	if ib, ok := r.Backend().(instrumentable); ok {
		ib.Instrument(s.met.reg, labels)
	}
	b := &modelBind{id: id, version: version, entry: e, runner: r}
	if b.integ, err = s.bindIntegrity(w, b, labels); err != nil {
		return nil, err
	}
	return b, nil
}

// bindIntegrity builds the integrity checker for one (worker, model) bind,
// keying scrub/canary state per resident model. A device-backed worker
// scrubs and repairs its hardware; a host-CPU worker has no device SRAM to
// scrub, so it runs canary-only with a ladder starting at reload.
// Binary-HDC workers opt out entirely: the golden canary answers come from
// the quantized graph, which the sign-quantized model does not reproduce
// bit-for-bit, so canaries would misfire on a healthy worker (and there is
// no device state to scrub or repair).
func (s *Server) bindIntegrity(w *worker, b *modelBind, labels string) (*integrity.Checker, error) {
	if w.name == binhd.Name {
		return nil, nil
	}
	pol := s.cfg.Integrity
	if b.entry != nil {
		if b.entry.Integrity != nil {
			pol = b.entry.Integrity
		} else if pol != nil && b.id != s.defModel && len(pol.Canaries) > 0 {
			// The server-level canaries answer against the default model
			// only; a different model would fail them while healthy. Other
			// models run scrub-only unless their entry carries a policy.
			stripped := *pol
			stripped.Canaries = nil
			stripped.CanaryInterval = 0
			pol = &stripped
		}
	}
	if !pol.Enabled() {
		return nil, nil
	}
	var golden *integrity.Golden
	if pol.ScrubInterval > 0 {
		if b.entry != nil {
			var err error
			if golden, err = b.entry.Golden(); err != nil {
				return nil, err
			}
		} else {
			golden = s.golden
		}
	}
	var target integrity.Target
	if dev := b.runner.Device(); dev != nil {
		target = dev
	}
	ck, err := integrity.NewChecker(golden, *pol, integrity.Deps{
		Worker:     w.id,
		Target:     target,
		Reload:     b.runner.ForceReload,
		Quarantine: b.runner.Quarantine,
	})
	if err != nil {
		return nil, fmt.Errorf("worker %d (%s) integrity: %w", w.id, w.name, err)
	}
	ck.Instrument(s.met.reg, labels)
	return ck, nil
}

// Do submits one request under the default tenant and model and blocks
// until it settles — the legacy single-tenant entry point, unchanged in
// behavior. fill populates the input tensor (may run more than once under
// recovery; must be idempotent); consume, if non-nil, reads the output
// tensor before the worker reuses it — copy out anything kept past the call.
func (s *Server) Do(ctx context.Context, fill func(in *tensor.Tensor), consume func(out *tensor.Tensor)) (Result, error) {
	return s.Submit(ctx, Request{Fill: fill, Consume: consume})
}

// Submit submits one annotated request and blocks until it settles:
// completion, shed, deadline, cancellation, or force-drain. A request
// naming an unconfigured tenant or an unregistered model fails immediately
// with a typed error, uncounted — those are caller bugs, not load.
func (s *Server) Submit(ctx context.Context, req Request) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t, ok := s.sched.tenant(req.Tenant)
	if !ok {
		return Result{}, &UnknownTenantError{Name: req.Tenant}
	}
	model := req.Model
	if s.cfg.Registry == nil {
		if model != "" {
			return Result{}, &UnknownModelError{Model: model}
		}
	} else {
		if model == "" {
			model = s.defModel
		}
		if _, ok := s.cfg.Registry.Get(model); !ok {
			return Result{}, &UnknownModelError{Model: model}
		}
	}

	// Deadline precedence: the caller's own context deadline, else the
	// tenant's configured deadline, else the server default.
	var rctx context.Context
	var cancel context.CancelFunc
	if _, has := ctx.Deadline(); !has {
		d := s.cfg.DefaultDeadline
		if t.spec.Deadline > 0 {
			d = t.spec.Deadline
		}
		if d > 0 {
			rctx, cancel = context.WithTimeout(ctx, d)
		} else {
			rctx, cancel = context.WithCancel(ctx)
		}
	} else {
		rctx, cancel = context.WithCancel(ctx)
	}
	r := &request{
		ctx:     rctx,
		cancel:  cancel,
		fill:    req.Fill,
		consume: req.Consume,
		tenant:  t,
		model:   model,
		res:     make(chan outcome, 1),
	}

	s.mu.Lock()
	s.met.submitted.Inc()
	if s.draining {
		s.met.shedDraining.Inc()
		if t.met != nil {
			t.met.shed.Inc()
		}
		s.mu.Unlock()
		cancel()
		return Result{}, &ShedError{Cause: ShedDraining}
	}
	if err := rctx.Err(); err != nil {
		s.account(t, outcome{err: err})
		s.mu.Unlock()
		cancel()
		return Result{}, err
	}
	if s.cfg.QueueCapacity > 0 && s.sched.depth >= s.cfg.QueueCapacity {
		s.met.shedQueueFull.Inc()
		if t.met != nil {
			t.met.shed.Inc()
		}
		s.mu.Unlock()
		cancel()
		return Result{}, &ShedError{Cause: ShedQueueFull}
	}
	if t.spec.Quota > 0 && len(t.q) >= t.spec.Quota {
		s.met.shedTenantQuota.Inc()
		if t.met != nil {
			t.met.shed.Inc()
		}
		s.mu.Unlock()
		cancel()
		return Result{}, &ShedError{Cause: ShedTenantQuota}
	}
	s.met.admitted.Inc()
	if t.met != nil {
		t.met.admitted.Inc()
	}
	r.id = s.reqID.Add(1)
	r.enq = time.Now()
	s.sched.push(t, r)
	depth := int64(s.sched.depth)
	s.met.queueDepth.Set(depth)
	s.met.queueDepthMax.SetMax(depth)
	s.pending[r] = struct{}{}
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case o := <-r.res:
		return o.res, o.err
	case <-rctx.Done():
		// Lost the race or genuinely expired: whoever wins the CAS sends
		// the authoritative outcome, so settle-then-read is safe either way.
		s.settle(r, outcome{err: s.reasonFor(rctx.Err())})
		o := <-r.res
		return o.res, o.err
	}
}

// reasonFor maps a context error to its settlement error: a cancellation
// caused by the drain deadline is a force-failure, not a caller cancel.
func (s *Server) reasonFor(err error) error {
	if s.forced.Load() && errors.Is(err, context.Canceled) {
		return &DrainError{Stage: "in-flight"}
	}
	return err
}

// settle decides a request's fate exactly once: the first caller to win the
// CAS records the accounting and delivers the outcome; later callers are
// no-ops. Returns whether this call won.
func (s *Server) settle(r *request, o outcome) bool {
	if !r.settled.CompareAndSwap(false, true) {
		return false
	}
	now := time.Now()
	s.mu.Lock()
	delete(s.pending, r)
	s.account(r.tenant, o)
	deq := r.deq
	s.mu.Unlock()
	s.traces.record(r, o, deq, now)
	r.res <- o
	r.cancel()
	return true
}

// account buckets one settled outcome into the live registry, attributing
// it to its tenant when tenancy is configured. The metric objects are
// atomic, but callers hold s.mu anyway (the settle path already does),
// keeping outcome accounting ordered with queue-state changes.
func (s *Server) account(t *tenantState, o outcome) {
	var tm *tenantMetrics
	if t != nil {
		tm = t.met
	}
	var de *DrainError
	switch {
	case o.err == nil:
		s.met.completed.Inc()
		if o.res.OnHost {
			s.met.hostFallback.Inc()
		}
		s.met.latency.Observe(o.res.Latency)
		s.met.queueWait.Observe(o.res.QueueWait)
		if tm != nil {
			tm.completed.Inc()
			tm.latency.Observe(o.res.Latency)
		}
	case errors.As(o.err, &de):
		s.met.drainForced.Inc()
	case errors.Is(o.err, context.DeadlineExceeded):
		s.met.deadlineExceeded.Inc()
		if tm != nil {
			tm.deadlineMissed.Inc()
		}
	case errors.Is(o.err, context.Canceled):
		s.met.cancelled.Inc()
	default:
		s.met.failed.Inc()
	}
}

// popLocked moves up to n unsettled requests from the scheduler into batch,
// in priority/weighted-fair order. The first live request fixes the batch's
// model (a coalesced invoke runs one model); further pops take only queue
// heads carrying the same model, so a multi-model backlog never blocks a
// batch — it just caps its occupancy. Requests that settled while queued
// (deadline, force-drain) are dropped without consuming a slot. Caller
// holds s.mu.
func (s *Server) popLocked(n int, batch []*request) []*request {
	now := time.Now()
	model := ""
	constrained := false
	if len(batch) > 0 {
		model, constrained = batch[0].model, true
	}
	for n > 0 {
		var r *request
		if constrained {
			r = s.sched.nextMatching(model)
		} else {
			r = s.sched.next()
		}
		if r == nil {
			break
		}
		if r.settled.Load() {
			continue
		}
		if !constrained {
			model, constrained = r.model, true
		}
		r.deq = now
		batch = append(batch, r)
		n--
	}
	s.met.queueDepth.Set(int64(s.sched.depth))
	return batch
}

// nextBatch blocks for the next coalesced batch of queued requests: up to
// MaxBatch of them, holding an underfull batch open for BatchWindow so more
// arrivals can ride the same invoke. The hold is capped at half of each
// member's remaining deadline slack, so batching never costs a request its
// deadline. nil means the server is draining and the queue is empty, so the
// worker should exit. A worker with integrity maintenance due gets an
// empty non-nil batch so the loop can run the pass while the queue is idle.
func (s *Server) nextBatch(w *worker) []*request {
	maxBatch := max(s.cfg.MaxBatch, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.sched.depth == 0 && !s.draining {
		if w.cur.integ != nil {
			if due, ok := w.cur.integ.NextDue(); ok {
				wait := time.Until(due)
				if wait <= 0 {
					return []*request{}
				}
				// An arrival Signals the cond; the timer broadcasts so a
				// due scrub/canary wakes this worker even if an arrival
				// woke a different one.
				t := time.AfterFunc(wait, s.cond.Broadcast)
				s.cond.Wait()
				t.Stop()
				continue
			}
		}
		s.cond.Wait()
	}
	if s.sched.depth == 0 && s.draining {
		return nil
	}
	batch := s.popLocked(maxBatch, nil)
	if len(batch) == 0 || len(batch) >= maxBatch || s.cfg.BatchWindow <= 0 || s.draining {
		return batch
	}

	// Hold the underfull batch open. Every member tightens the collection
	// deadline to half its remaining slack.
	deadline := time.Now().Add(s.cfg.BatchWindow)
	tighten := func(rs []*request) {
		for _, r := range rs {
			if d, ok := r.ctx.Deadline(); ok {
				if bound := time.Now().Add(time.Until(d) / 2); bound.Before(deadline) {
					deadline = bound
				}
			}
		}
	}
	tighten(batch)
	for len(batch) < maxBatch && !s.draining {
		wait := time.Until(deadline)
		if wait <= 0 {
			break
		}
		// Arrivals Signal the cond; the timer broadcasts so a window expiry
		// always wakes this worker even if an arrival woke a different one.
		t := time.AfterFunc(wait, s.cond.Broadcast)
		s.cond.Wait()
		t.Stop()
		n := len(batch)
		batch = s.popLocked(maxBatch-n, batch)
		tighten(batch[n:])
	}
	return batch
}

// workerLoop drains the queue through one device until shutdown.
func (s *Server) workerLoop(w *worker) {
	defer s.wg.Done()
	for {
		batch := s.nextBatch(w)
		if batch == nil {
			return
		}
		// Filter members that settled or expired while queued.
		live := batch[:0]
		for _, r := range batch {
			if r.settled.Load() {
				continue
			}
			if err := r.ctx.Err(); err != nil {
				s.settle(r, outcome{err: s.reasonFor(err)})
				continue
			}
			live = append(live, r)
		}
		if len(live) > 0 {
			s.invokeBatch(w, live)
		}
		if w.cur.integ != nil {
			s.maintain(w)
		}
	}
}

// maintain runs one worker's due integrity work (scrub, canaries, repairs)
// between batches, on the worker goroutine that owns the device. The pass
// runs under a cancellable context registered as the worker's in-flight
// cancel, so the drain force path can cut a wedged canary short; a server
// already draining skips the pass entirely — shutdown work should not be
// delayed by maintenance.
func (s *Server) maintain(w *worker) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.invokeMu.Lock()
	w.invokeCancel = cancel
	w.invokeMu.Unlock()
	defer func() {
		w.invokeMu.Lock()
		w.invokeCancel = nil
		w.invokeMu.Unlock()
	}()

	b := w.cur
	invoke := func(ctx context.Context, c integrity.Canary) (int, float64, error) {
		_, err := b.runner.InvokeCtx(ctx, func(in *tensor.Tensor) {
			copy(in.F32[:len(c.Input)], c.Input)
		})
		if err != nil {
			return 0, 0, err
		}
		return int(b.runner.Output(0).I32[0]), integrity.MarginRow(b.runner.Output(1), 0), nil
	}
	b.integ.Maintain(ctx, invoke)

	// Repairs and canary invokes move breaker and reliability state;
	// republish both so Health and Report see them without an invoke.
	w.state.Store(int32(b.runner.BreakerState()))
	rep := b.runner.Report()
	w.mu.Lock()
	b.report = rep
	w.mu.Unlock()
}

// bind points w at model before an invoke, lazily building (or rebuilding,
// after a hot swap) the runner, and charges the device-memory admission:
// the returned swap is the re-setup this invoke must be billed because the
// model was not resident — zero on a residency hit, and always zero in
// legacy mode. Runs on the worker goroutine; the binds-map write is under
// w.mu so Report can walk the map concurrently.
func (s *Server) bind(w *worker, model string) (*modelBind, time.Duration, error) {
	if s.cfg.Registry == nil {
		return w.cur, 0, nil
	}
	e, ok := s.cfg.Registry.Get(model)
	if !ok {
		return nil, 0, &UnknownModelError{Model: model}
	}
	b := w.binds[model]
	if b == nil || b.version != e.Version {
		nb, err := s.buildBind(w, model, e, nil)
		if err != nil {
			return nil, 0, err
		}
		w.mu.Lock()
		w.binds[model] = nb
		w.mu.Unlock()
		b = nb
	}
	w.cur = b
	var swap time.Duration
	if w.mem != nil {
		swap = w.mem.Acquire(e).Setup
	} else if !b.loaded {
		// A host-silicon worker has no simulated device memory; it pays a
		// one-time model-load bill per bind instead — one memory-bound
		// pass over the serialized blob.
		swap = e.HostSetup(s.p.Host)
		b.loaded = true
	}
	if swap > 0 {
		w.mu.Lock()
		b.swap += swap
		w.mu.Unlock()
	}
	return b, swap, nil
}

// invokeBatch serves a coalesced batch through one device invoke: members'
// samples pack into consecutive rows of the input tensor, the runner executes
// the occupied row prefix, and each member reads back its own output row.
// With MaxBatch ≤ 1 the batch is always a single request and the invoke takes
// exactly the pre-batching path (full-tensor fill, InvokeCtx). All batch
// members share one model (popLocked guarantees it); the worker binds it
// first, paying the re-setup bill if the device memory missed.
func (s *Server) invokeBatch(w *worker, batch []*request) {
	rows := len(batch)
	start := time.Now()
	batched := s.cfg.MaxBatch > 1

	b, swap, berr := s.bind(w, batch[0].model)
	if berr != nil {
		for _, r := range batch {
			s.settle(r, outcome{err: berr})
		}
		return
	}

	// One context governs the merged invoke. A single-request invoke uses
	// the request's own context; a multi-request one gets a context bounded
	// by the latest member deadline — members expiring earlier settle
	// individually from Do — and cancellable by the drain force path. The
	// merged context is detached from the members' parents, so a watcher
	// per member cancels it once the last live member settles or is
	// cancelled: an invoke (or its pace interval) must not keep the worker
	// occupied when nobody is left waiting for the result.
	ictx := batch[0].ctx
	var icancel context.CancelFunc
	if rows > 1 {
		latest, all := time.Time{}, true
		for _, r := range batch {
			d, ok := r.ctx.Deadline()
			if !ok {
				all = false
				break
			}
			if d.After(latest) {
				latest = d
			}
		}
		if all {
			ictx, icancel = context.WithDeadline(context.Background(), latest)
		} else {
			ictx, icancel = context.WithCancel(context.Background())
		}
		defer icancel()
		var liveMembers atomic.Int64
		liveMembers.Store(int64(rows))
		for _, r := range batch {
			stop := context.AfterFunc(r.ctx, func() {
				if liveMembers.Add(-1) == 0 {
					icancel()
				}
			})
			defer stop()
		}
		w.invokeMu.Lock()
		w.invokeCancel = icancel
		w.invokeMu.Unlock()
		defer func() {
			w.invokeMu.Lock()
			w.invokeCancel = nil
			w.invokeMu.Unlock()
		}()
	}

	before := b.runner.Report().FallbackInvokes
	var t backend.Timing
	var err error
	if batched {
		t, err = b.runner.InvokeBatchCtx(ictx, rows, func(in *tensor.Tensor) {
			for i, r := range batch {
				r.fill(w.rowView(in, i))
			}
		})
	} else {
		t, err = b.runner.InvokeCtx(ictx, batch[0].fill)
	}
	rep := b.runner.Report()
	onHost := rep.FallbackInvokes > before
	if err == nil {
		out := b.runner.Output(0)
		for i, r := range batch {
			if r.consume == nil || r.settled.Load() {
				continue
			}
			if batched {
				r.consume(w.rowView(out, i))
			} else {
				r.consume(out)
			}
		}
	}
	w.state.Store(int32(b.runner.BreakerState()))
	w.mu.Lock()
	b.report = rep
	w.mu.Unlock()

	span := &invokeSpan{
		worker:  w.id,
		backend: w.name,
		batch:   rows,
		breaker: b.runner.BreakerState(),
		onHost:  onHost,
		start:   start,
	}

	if err != nil {
		span.end = time.Now()
		// A merged invoke fails as a unit; settle each member with its own
		// context error when it has one, else the batch error. (A
		// single-request invoke propagates the invoke error unchanged.)
		for _, r := range batch {
			cause := err
			if rows > 1 {
				if cerr := r.ctx.Err(); cerr != nil {
					cause = cerr
				}
			}
			s.settle(r, outcome{err: s.reasonFor(cause), inv: span})
		}
		return
	}

	// A residency miss paid its re-setup before the invoke could run; bill
	// it into the parameter-streaming phase so the cost model (and pacing,
	// which scales off the simulated total) both see it.
	t.WeightStream += swap

	s.met.batchInvokes.Inc()
	s.met.batchRows.Add(int64(rows))
	s.met.batchRowsMax.SetMax(int64(rows))
	per := t.Total() / time.Duration(rows)
	for i := 0; i < rows; i++ {
		s.met.perSample.Observe(per)
	}

	pace := s.cfg.PacePerInvoke
	if s.cfg.PaceScale > 0 {
		pace += time.Duration(s.cfg.PaceScale * float64(t.Total()))
	}
	if pace > 0 {
		// Occupy the worker for the pace interval, but let a cancelled
		// invoke (deadline, force-drain) release it early — the result is
		// already computed either way.
		timer := time.NewTimer(pace)
		select {
		case <-timer.C:
		case <-ictx.Done():
			timer.Stop()
		}
	}
	now := time.Now()
	span.end = now
	w.mu.Lock()
	w.stats.Invokes++
	w.stats.Rows += rows
	if rows > w.stats.MaxRows {
		w.stats.MaxRows = rows
	}
	w.stats.SimTime += t.Total()
	w.stats.Busy += now.Sub(start)
	b.invokes++
	w.mu.Unlock()
	for _, r := range batch {
		lat := now.Sub(r.enq)
		won := s.settle(r, outcome{res: Result{
			Timing:    t,
			OnHost:    onHost,
			Device:    w.id,
			Backend:   w.name,
			BatchSize: rows,
			QueueWait: start.Sub(r.enq),
			Latency:   lat,
			Tenant:    r.tenant.spec.Name,
			Model:     r.model,
			Swap:      swap,
		}, inv: span})
		if won {
			w.mu.Lock()
			w.stats.Requests++
			w.stats.Latency.Observe(lat)
			b.requests++
			w.mu.Unlock()
		}
	}
}

// Health derives the server state from the per-device breakers: all closed
// is Healthy, none closed is Critical, anything between is Degraded.
func (s *Server) Health() Health {
	closed := 0
	for _, w := range s.workers {
		if pipeline.BreakerState(w.state.Load()) == pipeline.BreakerClosed {
			closed++
		}
	}
	switch closed {
	case len(s.workers):
		return Healthy
	case 0:
		return Critical
	}
	return Degraded
}

// Drain stops admitting, lets the workers finish queued and in-flight work,
// and waits for them to exit. The wait is bounded by the earlier of ctx and
// the configured DrainDeadline; when the bound fires, still-queued requests
// are failed with DrainError{"queued"}, in-flight requests are cancelled
// (settling as DrainError{"in-flight"}), and Drain returns a *DrainError
// after the workers exit. A clean drain returns nil. Drain is idempotent;
// concurrent calls all wait for the same shutdown.
func (s *Server) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.DrainDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainDeadline)
		defer cancel()
	}
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Deadline fired: force the stragglers.
	s.forced.Store(true)
	s.mu.Lock()
	queued := s.sched.takeAll()
	s.met.queueDepth.Set(0)
	var inflight []*request
	for r := range s.pending {
		inflight = append(inflight, r)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, r := range queued {
		s.settle(r, outcome{err: &DrainError{Stage: "queued"}})
	}
	for _, r := range inflight {
		r.cancel() // settles as DrainError{"in-flight"} via reasonFor
	}
	// A multi-request invoke runs under a merged context that member cancels
	// don't reach; fire each worker's in-flight cancel so a coalesced invoke
	// cannot outlive the drain deadline either.
	for _, w := range s.workers {
		w.invokeMu.Lock()
		if c := w.invokeCancel; c != nil {
			c()
		}
		w.invokeMu.Unlock()
	}
	<-done
	return &DrainError{Stage: "deadline"}
}

// Close drains with only the configured DrainDeadline as the bound.
func (s *Server) Close() error { return s.Drain(context.Background()) }

// Metrics returns the live registry the server streams into: the Config's
// registry when one was supplied, the server's private one otherwise. Its
// Snapshot is safe at any time, including while workers are mid-invoke, and
// at quiescence (after Drain) it agrees with Report exactly.
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// Report snapshots the serving counters, latency histograms, aggregated
// reliability accounting across all workers, the per-backend-class
// breakdowns, and the current health. The counters are materialized from
// the live registry — the report is a view of the same numbers a metrics
// Snapshot exposes, not a second set of books.
func (s *Server) Report() ServeReport {
	s.mu.Lock()
	c := s.met.counters()
	s.mu.Unlock()
	rep := ServeReport{counters: c, Devices: len(s.workers), Fleet: s.cfg.fleet(), Health: s.Health()}
	byName := make(map[string]int) // backend class -> index into rep.Backends
	type modelAgg struct {
		requests, invokes int
		swap              time.Duration
	}
	models := map[string]*modelAgg{}
	for _, w := range s.workers {
		w.mu.Lock()
		st := w.stats
		st.Latency = w.stats.Latency.Clone()
		var wrel pipeline.ReliabilityReport
		var integs []*integrity.Checker
		for _, mb := range w.binds {
			mergeReliability(&wrel, mb.report)
			if mb.integ != nil {
				integs = append(integs, mb.integ)
			}
			if s.cfg.Registry != nil {
				a := models[mb.id]
				if a == nil {
					a = &modelAgg{}
					models[mb.id] = a
				}
				a.requests += mb.requests
				a.invokes += mb.invokes
				a.swap += mb.swap
			}
		}
		w.mu.Unlock()
		mergeReliability(&rep.Reliability, wrel)

		bi, ok := byName[w.name]
		if !ok {
			bi = len(rep.Backends)
			byName[w.name] = bi
			rep.Backends = append(rep.Backends, BackendStats{
				Name:    w.name,
				Latency: metrics.NewHistogram(),
			})
		}
		b := &rep.Backends[bi]
		b.Workers++
		if pipeline.BreakerState(w.state.Load()) == pipeline.BreakerClosed {
			b.BreakersClosed++
		}
		b.Invokes += st.Invokes
		b.Rows += st.Rows
		if st.MaxRows > b.MaxRows {
			b.MaxRows = st.MaxRows
		}
		b.Requests += st.Requests
		b.SimTime += st.SimTime
		b.Busy += st.Busy
		b.Latency.Merge(st.Latency)
		mergeReliability(&b.Reliability, wrel)

		for _, ck := range integs {
			if rep.Integrity == nil {
				rep.Integrity = &integrity.Report{}
			}
			rep.Integrity.Merge(ck.Report())
		}
		if w.mem != nil {
			rep.Memory = append(rep.Memory, w.mem.Stats())
		}
	}
	if len(s.cfg.Tenants) > 0 {
		for _, t := range s.sched.tenants {
			rep.Tenants = append(rep.Tenants, TenantStats{
				Name:           t.spec.Name,
				Priority:       t.spec.Priority,
				Weight:         t.spec.weight(),
				Admitted:       int(t.met.admitted.Value()),
				Shed:           int(t.met.shed.Value()),
				Completed:      int(t.met.completed.Value()),
				DeadlineMissed: int(t.met.deadlineMissed.Value()),
				Latency:        t.met.latency.Snapshot(),
			})
		}
	}
	if s.cfg.Registry != nil {
		for _, id := range s.cfg.Registry.IDs() {
			e, _ := s.cfg.Registry.Get(id)
			ms := ModelStats{ID: id, Version: e.Version, Footprint: e.Footprint, Setup: e.Setup}
			if a := models[id]; a != nil {
				ms.Requests, ms.Invokes, ms.Swap = a.requests, a.invokes, a.swap
			}
			rep.Models = append(rep.Models, ms)
		}
	}
	return rep
}

// IntegrityEvents returns every worker's retained repair-ladder events in
// worker order (each bind's events are Seq-ordered). Empty when the
// server runs without an integrity policy, or nothing ever broke.
func (s *Server) IntegrityEvents() []integrity.Event {
	var evs []integrity.Event
	for _, w := range s.workers {
		w.mu.Lock()
		for _, b := range w.binds {
			if b.integ != nil {
				evs = append(evs, b.integ.Events()...)
			}
		}
		w.mu.Unlock()
	}
	return evs
}

// RegistryEvents merges every accelerated worker's retained residency
// transitions (hits, misses, evictions) into one Seq-ordered stream. Empty
// outside registry mode.
func (s *Server) RegistryEvents() []registry.Event {
	var evs []registry.Event
	for _, w := range s.workers {
		if w.mem != nil {
			evs = append(evs, w.mem.Events()...)
		}
	}
	registry.SortEvents(evs)
	return evs
}

// mergeReliability accumulates one device's reliability report into agg.
func mergeReliability(agg *pipeline.ReliabilityReport, r pipeline.ReliabilityReport) {
	agg.Invokes += r.Invokes
	agg.DeviceInvokes += r.DeviceInvokes
	agg.Retries += r.Retries
	agg.LinkFaults += r.LinkFaults
	agg.Resets += r.Resets
	agg.Reloads += r.Reloads
	agg.FallbackInvokes += r.FallbackInvokes
	agg.BreakerTripped = agg.BreakerTripped || r.BreakerTripped
	agg.BreakerTrips += r.BreakerTrips
	agg.BreakerProbes += r.BreakerProbes
	agg.BreakerCloses += r.BreakerCloses
	agg.BackoffTime += r.BackoffTime
	agg.ReloadTime += r.ReloadTime
	agg.WastedTime += r.WastedTime
	agg.FallbackTime += r.FallbackTime
}
