package serve

import (
	"fmt"
	"strings"
	"time"

	"hdcedge/internal/integrity"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
)

// BackendStats aggregates the workers of one backend class ("tpu", "cpu"):
// how much of the fleet they are, their breaker health, and their share of
// the serving work.
type BackendStats struct {
	Name           string // backend class name
	Workers        int    // workers of this class in the fleet
	BreakersClosed int    // of those, how many breakers are currently closed

	Invokes  int                // successful engine invokes
	Rows     int                // occupied rows summed across those invokes
	MaxRows  int                // largest single-invoke occupancy
	Requests int                // completed requests settled by this class
	SimTime  time.Duration      // simulated invoke time summed
	Busy     time.Duration      // wall-clock invoke + pacing occupancy
	Latency  *metrics.Histogram // e2e latency of requests served here

	Reliability pipeline.ReliabilityReport
}

// MeanOccupancy returns the class's mean occupied rows per invoke, or zero
// before its first invoke.
func (b BackendStats) MeanOccupancy() float64 {
	if b.Invokes == 0 {
		return 0
	}
	return float64(b.Rows) / float64(b.Invokes)
}

// TenantStats is one tenant's admission and completion breakdown; present
// only when the server is configured with tenants.
type TenantStats struct {
	Name           string
	Priority       int
	Weight         int
	Admitted       int
	Shed           int // all causes: draining, queue-full, tenant quota
	Completed      int
	DeadlineMissed int
	Latency        *metrics.Histogram // e2e latency of this tenant's completions
}

// ModelStats is one registered model's serving share; present only in
// registry mode.
type ModelStats struct {
	ID        string
	Version   int
	Footprint int           // on-chip parameter-memory occupancy, bytes
	Setup     time.Duration // per-miss re-setup price
	Requests  int           // completed requests served under this model
	Invokes   int           // successful engine invokes
	Swap      time.Duration // total re-setup billed across the fleet
}

// ServeReport is a point-in-time snapshot of everything the server counted:
// admission outcomes, completion latencies, the aggregated reliability work
// across all workers, the per-backend-class breakdowns, and the derived
// health.
type ServeReport struct {
	counters

	Devices     int       // worker-pool size
	Fleet       FleetSpec // backend class of each worker, in dispatch order
	Backends    []BackendStats
	Reliability pipeline.ReliabilityReport
	Health      Health

	// Integrity aggregates the per-worker integrity checkers (scrubs,
	// corruptions, canaries, repair-ladder work); nil when the server runs
	// without an integrity policy.
	Integrity *integrity.Report

	// Tenants breaks admission and completion down per tenant, in
	// registration order; empty without Config.Tenants.
	Tenants []TenantStats

	// Models breaks the serving work down per registered model, in
	// registration order; empty without Config.Registry.
	Models []ModelStats

	// Memory is each accelerated worker's simulated parameter-memory
	// accounting (hits, misses, evictions, swap billed), in worker order;
	// empty without Config.Registry.
	Memory []registry.MemStats
}

// Tenant returns one tenant's stats by name.
func (r ServeReport) Tenant(name string) (TenantStats, bool) {
	for _, t := range r.Tenants {
		if t.Name == name {
			return t, true
		}
	}
	return TenantStats{}, false
}

// Model returns one model's stats by registry ID.
func (r ServeReport) Model(id string) (ModelStats, bool) {
	for _, m := range r.Models {
		if m.ID == id {
			return m, true
		}
	}
	return ModelStats{}, false
}

// Backend returns the stats of one backend class by name, if the fleet has
// workers of that class.
func (r ServeReport) Backend(name string) (BackendStats, bool) {
	for _, b := range r.Backends {
		if b.Name == name {
			return b, true
		}
	}
	return BackendStats{}, false
}

// Shed returns the total requests refused at admission, by any cause.
func (r ServeReport) Shed() int { return r.ShedQueueFull + r.ShedDraining + r.ShedTenantQuota }

// MeanOccupancy returns the mean occupied rows per device invoke, or zero
// before the first completed invoke.
func (r ServeReport) MeanOccupancy() float64 {
	if r.BatchInvokes == 0 {
		return 0
	}
	return float64(r.BatchRows) / float64(r.BatchInvokes)
}

// Settled returns how many submitted requests have reached a terminal state.
func (r ServeReport) Settled() int {
	return r.Completed + r.Shed() + r.DeadlineExceeded + r.Cancelled + r.DrainForced + r.Failed
}

// String renders a multi-line operator summary.
func (r ServeReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve: %d submitted, %d admitted, %d completed (%d on host), health %s\n",
		r.Submitted, r.Admitted, r.Completed, r.HostFallback, r.Health)
	fmt.Fprintf(&sb, "  shed %d (%d queue-full, %d draining, %d tenant-quota), %d deadline-exceeded, %d cancelled, %d drain-forced, %d failed\n",
		r.Shed(), r.ShedQueueFull, r.ShedDraining, r.ShedTenantQuota, r.DeadlineExceeded, r.Cancelled, r.DrainForced, r.Failed)
	fmt.Fprintf(&sb, "  queue depth max %d across %d worker(s) [%s]\n", r.MaxQueueDepth, r.Devices, r.Fleet)
	fmt.Fprintf(&sb, "  e2e %s\n", r.Latency)
	fmt.Fprintf(&sb, "  queue-wait n=%d p50=%s p99=%s max=%s\n",
		r.QueueWait.Count(), metrics.FmtDur(r.QueueWait.Quantile(0.5)),
		metrics.FmtDur(r.QueueWait.Quantile(0.99)), metrics.FmtDur(r.QueueWait.Max()))
	fmt.Fprintf(&sb, "  batching: %d invokes, %d rows, occupancy mean %.2f max %d, per-sample p50=%s p99=%s\n",
		r.BatchInvokes, r.BatchRows, r.MeanOccupancy(), r.MaxBatchRows,
		metrics.FmtDur(r.PerSample.Quantile(0.5)), metrics.FmtDur(r.PerSample.Quantile(0.99)))
	for _, b := range r.Backends {
		fmt.Fprintf(&sb, "  backend %s: %d worker(s) (%d/%d breakers closed), %d requests via %d invokes (occupancy mean %.2f max %d), sim %s busy %s, e2e p50=%s p99=%s\n",
			b.Name, b.Workers, b.BreakersClosed, b.Workers,
			b.Requests, b.Invokes, b.MeanOccupancy(), b.MaxRows,
			metrics.FmtDur(b.SimTime), metrics.FmtDur(b.Busy),
			metrics.FmtDur(b.Latency.Quantile(0.5)), metrics.FmtDur(b.Latency.Quantile(0.99)))
	}
	for _, t := range r.Tenants {
		fmt.Fprintf(&sb, "  tenant %s (p%d w%d): %d admitted, %d shed, %d completed, %d deadline-missed, e2e p50=%s p99=%s\n",
			t.Name, t.Priority, t.Weight, t.Admitted, t.Shed, t.Completed, t.DeadlineMissed,
			metrics.FmtDur(t.Latency.Quantile(0.5)), metrics.FmtDur(t.Latency.Quantile(0.99)))
	}
	for _, m := range r.Models {
		fmt.Fprintf(&sb, "  model %s@v%d: %d requests via %d invokes, footprint %dB, setup %s, swap billed %s\n",
			m.ID, m.Version, m.Requests, m.Invokes, m.Footprint,
			metrics.FmtDur(m.Setup), metrics.FmtDur(m.Swap))
	}
	for _, ms := range r.Memory {
		fmt.Fprintf(&sb, "  device %d memory: %d/%d bytes, %d resident, %d hits, %d misses, %d evictions, swap %s\n",
			ms.Device, ms.Used, ms.Budget, ms.Resident, ms.Hits, ms.Misses, ms.Evictions,
			metrics.FmtDur(ms.SwapTime))
	}
	if g := r.Integrity; g != nil {
		fmt.Fprintf(&sb, "  integrity: %d scrubs (%d corruptions), %d canary runs (%d failures), %d incidents (%d repaired), repairs %d reupload / %d reload / %d reset / %d quarantine, repair sim %s",
			g.Scrubs, g.Corruptions, g.CanaryRuns, g.CanaryFailures,
			g.Incidents, g.Repaired, g.Restores, g.Reloads, g.Resets, g.Quarantines,
			metrics.FmtDur(g.RepairSimTime))
		if g.TimeToRepair != nil && g.TimeToRepair.Count() > 0 {
			fmt.Fprintf(&sb, ", time-to-repair mean %s max %s",
				metrics.FmtDur(g.TimeToRepair.Mean()), metrics.FmtDur(g.TimeToRepair.Max()))
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "  %s", r.Reliability)
	return sb.String()
}
