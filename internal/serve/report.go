package serve

import (
	"fmt"
	"strings"

	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// ServeReport is a point-in-time snapshot of everything the server counted:
// admission outcomes, completion latencies, the aggregated reliability work
// across all devices, and the derived health.
type ServeReport struct {
	counters

	Devices     int
	Reliability pipeline.ReliabilityReport
	Health      Health
}

// Shed returns the total requests refused at admission, by any cause.
func (r ServeReport) Shed() int { return r.ShedQueueFull + r.ShedDraining }

// MeanOccupancy returns the mean occupied rows per device invoke, or zero
// before the first completed invoke.
func (r ServeReport) MeanOccupancy() float64 {
	if r.BatchInvokes == 0 {
		return 0
	}
	return float64(r.BatchRows) / float64(r.BatchInvokes)
}

// Settled returns how many submitted requests have reached a terminal state.
func (r ServeReport) Settled() int {
	return r.Completed + r.Shed() + r.DeadlineExceeded + r.Cancelled + r.DrainForced + r.Failed
}

// String renders a multi-line operator summary.
func (r ServeReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve: %d submitted, %d admitted, %d completed (%d on host), health %s\n",
		r.Submitted, r.Admitted, r.Completed, r.HostFallback, r.Health)
	fmt.Fprintf(&sb, "  shed %d (%d queue-full, %d draining), %d deadline-exceeded, %d cancelled, %d drain-forced, %d failed\n",
		r.Shed(), r.ShedQueueFull, r.ShedDraining, r.DeadlineExceeded, r.Cancelled, r.DrainForced, r.Failed)
	fmt.Fprintf(&sb, "  queue depth max %d across %d device(s)\n", r.MaxQueueDepth, r.Devices)
	fmt.Fprintf(&sb, "  e2e %s\n", r.Latency)
	fmt.Fprintf(&sb, "  queue-wait n=%d p50=%s p99=%s max=%s\n",
		r.QueueWait.Count(), metrics.FmtDur(r.QueueWait.Quantile(0.5)),
		metrics.FmtDur(r.QueueWait.Quantile(0.99)), metrics.FmtDur(r.QueueWait.Max()))
	fmt.Fprintf(&sb, "  batching: %d invokes, %d rows, occupancy mean %.2f max %d, per-sample p50=%s p99=%s\n",
		r.BatchInvokes, r.BatchRows, r.MeanOccupancy(), r.MaxBatchRows,
		metrics.FmtDur(r.PerSample.Quantile(0.5)), metrics.FmtDur(r.PerSample.Quantile(0.99)))
	fmt.Fprintf(&sb, "  %s", r.Reliability)
	return sb.String()
}
