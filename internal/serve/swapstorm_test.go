package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/tensor"
)

// TestServeBindDuringSwapStorm hammers registry.Swap from a trainer-style
// publisher while workers serve and re-bind concurrently: every request
// must succeed, and every answer must be the prediction of one of the two
// published models — a torn bind (a worker seeing half a swap) would
// produce an answer belonging to neither. The report's served version
// must land on the final swap. Runs under -race via make online-smoke.
func TestServeBindDuringSwapStorm(t *testing.T) {
	p, cm1, ds := serveModel(t)
	model2, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := pipeline.CompileInference(p, model2, ds, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth per model via direct runners: the served answer must
	// always be one of these two, whatever version the worker bound.
	const rows = 24
	expected := make([]map[int32]bool, rows)
	for i := range expected {
		expected[i] = map[int32]bool{}
	}
	for _, cm := range []*edgetpu.CompiledModel{cm1, cm2} {
		direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, fastPolicy())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := direct.Invoke(rowFill(ds, i)); err != nil {
				t.Fatal(err)
			}
			expected[i][direct.Output(0).I32[0]] = true
		}
	}

	g := registry.New()
	if _, err := g.Register("m", cm1, nil); err != nil {
		t.Fatal(err)
	}
	s, err := New(p, nil, Config{Devices: 2, Policy: fastPolicy(), Registry: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const swaps = 60
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the publisher
		defer wg.Done()
		defer close(stop)
		for i := 1; i <= swaps; i++ {
			cm := cm2
			if i%2 == 0 {
				cm = cm1
			}
			e, err := g.Swap("m", cm, nil)
			if err != nil {
				errs <- err
				return
			}
			if e.Version != i+1 {
				errs <- fmt.Errorf("swap %d: version %d", i, e.Version)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 0 {
						return
					}
				default:
				}
				row := (w*7 + i) % rows
				var got int32
				if _, err := s.Submit(context.Background(), Request{
					Fill:    rowFill(ds, row),
					Consume: func(out *tensor.Tensor) { got = out.I32[0] },
				}); err != nil {
					errs <- err
					return
				}
				if !expected[row][got] {
					errs <- fmt.Errorf("row %d: prediction %d from neither published model", row, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// One more request binds the final version.
	if _, err := s.Submit(context.Background(), Request{Fill: rowFill(ds, 0)}); err != nil {
		t.Fatal(err)
	}
	ms, ok := s.Report().Model("m")
	if !ok || ms.Version != swaps+1 {
		t.Fatalf("served version %d after %d swaps", ms.Version, swaps)
	}
}
