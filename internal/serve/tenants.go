package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hdcedge/internal/metrics"
)

// This file is the multi-tenant half of the serving core: tenant and model
// spec parsing (typed errors, same discipline as ParseFleet) and the
// admission scheduler — strict priority classes, stride-based weighted-fair
// queuing within a class, per-tenant quotas and deadlines. With no tenants
// configured the scheduler degenerates to the single FIFO the server always
// had, keeping the legacy path bit-identical. See docs/multitenant.md.

// TenantSpec is one tenant's scheduling contract.
type TenantSpec struct {
	// Name identifies the tenant on requests and in metrics labels.
	Name string

	// Weight is the tenant's weighted-fair share within its priority
	// class. Zero defaults to 1.
	Weight int

	// Priority is the strict priority class: a queued request of a
	// higher-priority tenant always dispatches before any lower-priority
	// one. Default 0.
	Priority int

	// Quota bounds the tenant's queued (admitted, undispatched) requests;
	// an arrival beyond it is shed with ShedTenantQuota even when the
	// global queue has room — this is what keeps one tenant's flood from
	// consuming everyone's admission capacity. Zero means no per-tenant
	// bound.
	Quota int

	// Deadline is the default deadline for this tenant's requests when
	// their context carries none. Zero falls back to Config.DefaultDeadline.
	Deadline time.Duration
}

// weight returns the effective WFQ weight.
func (t TenantSpec) weight() int { return max(t.Weight, 1) }

// TenantError reports a rejected tenant spec string: which segment was bad
// and why. Segment is empty for spec-level faults.
type TenantError struct {
	Spec    string
	Segment string
	Reason  string
}

func (e *TenantError) Error() string {
	if e.Segment == "" {
		return fmt.Sprintf("serve: tenant spec %q: %s", e.Spec, e.Reason)
	}
	return fmt.Sprintf("serve: tenant spec %q segment %q: %s", e.Spec, e.Segment, e.Reason)
}

// ParseTenants parses a tenant spec like
//
//	"prod=w4,p1,q64,d50ms;batch=w1,q16;free"
//
// Segments are ';'-separated "name" or "name=opts"; opts are ','-separated
// w<weight>, p<priority>, q<quota>, d<duration>. Empty segments, duplicate
// names, repeated options and non-positive weights are rejected with a
// *TenantError rather than silently folded, so a typo'd spec cannot
// quietly mis-provision a tenant.
func ParseTenants(spec string) ([]TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, &TenantError{Spec: spec, Reason: "empty spec"}
	}
	var tenants []TenantSpec
	seen := map[string]bool{}
	for _, seg := range strings.Split(spec, ";") {
		trimmed := strings.TrimSpace(seg)
		if trimmed == "" {
			return nil, &TenantError{Spec: spec, Segment: seg, Reason: "empty segment"}
		}
		name, optStr, hasOpts := strings.Cut(trimmed, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, &TenantError{Spec: spec, Segment: trimmed, Reason: "empty tenant name"}
		}
		if seen[name] {
			return nil, &TenantError{Spec: spec, Segment: trimmed,
				Reason: fmt.Sprintf("duplicate tenant %q", name)}
		}
		seen[name] = true
		t := TenantSpec{Name: name}
		if hasOpts {
			set := map[byte]bool{}
			for _, opt := range strings.Split(optStr, ",") {
				opt = strings.TrimSpace(opt)
				if opt == "" {
					return nil, &TenantError{Spec: spec, Segment: trimmed, Reason: "empty option"}
				}
				key, val := opt[0], opt[1:]
				if set[key] {
					return nil, &TenantError{Spec: spec, Segment: trimmed,
						Reason: fmt.Sprintf("repeated option %q", string(key))}
				}
				set[key] = true
				switch key {
				case 'w', 'p', 'q':
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, &TenantError{Spec: spec, Segment: trimmed,
							Reason: fmt.Sprintf("option %q is not an integer", opt)}
					}
					switch key {
					case 'w':
						if n <= 0 {
							return nil, &TenantError{Spec: spec, Segment: trimmed,
								Reason: fmt.Sprintf("weight %d must be at least 1", n)}
						}
						t.Weight = n
					case 'p':
						if n < 0 {
							return nil, &TenantError{Spec: spec, Segment: trimmed,
								Reason: fmt.Sprintf("priority %d must be non-negative", n)}
						}
						t.Priority = n
					case 'q':
						if n < 0 {
							return nil, &TenantError{Spec: spec, Segment: trimmed,
								Reason: fmt.Sprintf("quota %d must be non-negative", n)}
						}
						t.Quota = n
					}
				case 'd':
					d, err := time.ParseDuration(val)
					if err != nil || d < 0 {
						return nil, &TenantError{Spec: spec, Segment: trimmed,
							Reason: fmt.Sprintf("option %q is not a non-negative duration", opt)}
					}
					t.Deadline = d
				default:
					return nil, &TenantError{Spec: spec, Segment: trimmed,
						Reason: fmt.Sprintf("unknown option %q (have w, p, q, d)", opt)}
				}
			}
		}
		tenants = append(tenants, t)
	}
	return tenants, nil
}

// ModelSpec names one model to train/compile and serve: its registry ID
// and, optionally, its hypervector dimension (zero means the caller's
// default).
type ModelSpec struct {
	Name string
	Dim  int
}

// ModelError reports a rejected model spec string.
type ModelError struct {
	Spec    string
	Segment string
	Reason  string
}

func (e *ModelError) Error() string {
	if e.Segment == "" {
		return fmt.Sprintf("serve: model spec %q: %s", e.Spec, e.Reason)
	}
	return fmt.Sprintf("serve: model spec %q segment %q: %s", e.Spec, e.Segment, e.Reason)
}

// ParseModels parses a model spec like "main=d2048;wide=d4096;tiny".
// Segments are ';'-separated "name" or "name=d<dim>". Empty segments,
// duplicate names and non-positive dimensions are rejected with a
// *ModelError.
func ParseModels(spec string) ([]ModelSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, &ModelError{Spec: spec, Reason: "empty spec"}
	}
	var models []ModelSpec
	seen := map[string]bool{}
	for _, seg := range strings.Split(spec, ";") {
		trimmed := strings.TrimSpace(seg)
		if trimmed == "" {
			return nil, &ModelError{Spec: spec, Segment: seg, Reason: "empty segment"}
		}
		name, optStr, hasOpts := strings.Cut(trimmed, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, &ModelError{Spec: spec, Segment: trimmed, Reason: "empty model name"}
		}
		if seen[name] {
			return nil, &ModelError{Spec: spec, Segment: trimmed,
				Reason: fmt.Sprintf("duplicate model %q", name)}
		}
		seen[name] = true
		m := ModelSpec{Name: name}
		if hasOpts {
			opt := strings.TrimSpace(optStr)
			if len(opt) < 2 || opt[0] != 'd' {
				return nil, &ModelError{Spec: spec, Segment: trimmed,
					Reason: fmt.Sprintf("unknown option %q (have d<dim>)", opt)}
			}
			n, err := strconv.Atoi(opt[1:])
			if err != nil || n <= 0 {
				return nil, &ModelError{Spec: spec, Segment: trimmed,
					Reason: fmt.Sprintf("option %q is not a positive dimension", opt)}
			}
			m.Dim = n
		}
		models = append(models, m)
	}
	return models, nil
}

// UnknownTenantError is returned by Submit for a request naming a tenant
// the server was not configured with.
type UnknownTenantError struct{ Name string }

func (e *UnknownTenantError) Error() string {
	return fmt.Sprintf("serve: unknown tenant %q", e.Name)
}

// UnknownModelError is returned by Submit for a request naming a model the
// registry does not hold.
type UnknownModelError struct{ Model string }

func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("serve: unknown model %q", e.Model)
}

// tenantMetrics are one tenant's live registry handles; nil in legacy
// (tenant-less) mode so the metrics namespace stays identical to the
// single-tenant server.
type tenantMetrics struct {
	admitted       *metrics.Counter
	shed           *metrics.Counter
	completed      *metrics.Counter
	deadlineMissed *metrics.Counter
	latency        *metrics.LiveHistogram
}

// newTenantMetrics resolves one tenant's labelled handles.
func newTenantMetrics(reg *metrics.Registry, name string) *tenantMetrics {
	l := fmt.Sprintf(`{tenant=%q}`, name)
	return &tenantMetrics{
		admitted:       reg.Counter("hdc_tenant_admitted_total" + l),
		shed:           reg.Counter("hdc_tenant_shed_total" + l),
		completed:      reg.Counter("hdc_tenant_completed_total" + l),
		deadlineMissed: reg.Counter("hdc_tenant_deadline_missed_total" + l),
		latency:        reg.Histogram("hdc_tenant_latency_seconds" + l),
	}
}

// tenantState is one tenant's queue and scheduling position. Guarded by
// Server.mu (the scheduler lives entirely under the admission lock).
type tenantState struct {
	spec   TenantSpec
	idx    int // registration order, the deterministic tie-break
	q      []*request
	pass   float64 // stride-scheduling virtual time
	stride float64 // 1 / weight
	met    *tenantMetrics
}

// scheduler is the admission queue refactored for tenancy: one FIFO per
// tenant, dispatched by strict priority then weighted-fair stride order.
// All methods are called under Server.mu.
type scheduler struct {
	tenants []*tenantState
	byName  map[string]*tenantState
	depth   int // total queued requests across tenants
}

// newScheduler builds the per-tenant queues; with no specs it creates the
// single anonymous tenant whose FIFO is exactly the legacy queue.
func newScheduler(specs []TenantSpec) *scheduler {
	if len(specs) == 0 {
		specs = []TenantSpec{{}}
	}
	sc := &scheduler{byName: make(map[string]*tenantState, len(specs))}
	for i, spec := range specs {
		t := &tenantState{spec: spec, idx: i, stride: 1 / float64(spec.weight())}
		sc.tenants = append(sc.tenants, t)
		sc.byName[spec.Name] = t
	}
	return sc
}

// tenant resolves a request's tenant name; "" maps to the first tenant.
func (sc *scheduler) tenant(name string) (*tenantState, bool) {
	if name == "" {
		return sc.tenants[0], true
	}
	t, ok := sc.byName[name]
	return t, ok
}

// push enqueues r on its tenant. A tenant waking from idle has its virtual
// time advanced to the lead of its backlogged peers in the same priority
// class, so banked idle time cannot starve everyone else later.
func (sc *scheduler) push(t *tenantState, r *request) {
	if len(t.q) == 0 {
		lead, ok := sc.minActivePass(t.spec.Priority)
		if ok && lead > t.pass {
			t.pass = lead
		}
	}
	t.q = append(t.q, r)
	sc.depth++
}

// minActivePass returns the smallest virtual time among backlogged tenants
// of the given priority class.
func (sc *scheduler) minActivePass(priority int) (float64, bool) {
	lead, ok := 0.0, false
	for _, t := range sc.tenants {
		if len(t.q) == 0 || t.spec.Priority != priority {
			continue
		}
		if !ok || t.pass < lead {
			lead, ok = t.pass, true
		}
	}
	return lead, ok
}

// pickTenant returns the backlogged tenant to serve next — the highest
// priority class, weighted-fair (minimum virtual time) within it, ties
// broken by registration order — optionally restricted to tenants whose
// head request carries the given model. nil when nothing is eligible.
func (sc *scheduler) pickTenant(model string, matchModel bool) *tenantState {
	var best *tenantState
	for _, t := range sc.tenants {
		if len(t.q) == 0 {
			continue
		}
		if matchModel && t.q[0].model != model {
			continue
		}
		if best == nil ||
			t.spec.Priority > best.spec.Priority ||
			(t.spec.Priority == best.spec.Priority && t.pass < best.pass) {
			best = t
		}
	}
	return best
}

// popFrom dequeues t's head and charges its stride.
func (sc *scheduler) popFrom(t *tenantState) *request {
	r := t.q[0]
	t.q = t.q[1:]
	sc.depth--
	t.pass += t.stride
	return r
}

// next dequeues the scheduler's next request, or nil when empty.
func (sc *scheduler) next() *request {
	t := sc.pickTenant("", false)
	if t == nil {
		return nil
	}
	return sc.popFrom(t)
}

// nextMatching dequeues the next request whose model is model, in the same
// priority/WFQ order, looking only at queue heads (a tenant's own FIFO
// order is never reordered). Settled heads are discarded in passing so a
// dead request cannot wall off a matching one behind it.
func (sc *scheduler) nextMatching(model string) *request {
	for {
		// Discard settled heads first so matching sees live requests.
		progress := false
		for _, t := range sc.tenants {
			for len(t.q) > 0 && t.q[0].settled.Load() {
				t.q = t.q[1:]
				sc.depth--
				progress = true
			}
		}
		t := sc.pickTenant(model, true)
		if t != nil {
			return sc.popFrom(t)
		}
		if !progress {
			return nil
		}
	}
}

// takeAll empties every queue (the drain force path), returning the
// stranded requests.
func (sc *scheduler) takeAll() []*request {
	var out []*request
	for _, t := range sc.tenants {
		out = append(out, t.q...)
		t.q = nil
	}
	sc.depth = 0
	return out
}
