package serve

import (
	"sync"
	"time"

	"hdcedge/internal/pipeline"
)

// DefaultTraceDepth is the trace ring capacity when Config.TraceDepth is
// zero.
const DefaultTraceDepth = 256

// Trace is the span breakdown of one settled request: how long it spent in
// each stage of its life (admit → queue → batch-hold → invoke → settle),
// and which worker/backend/batch served it. Durations are reported in
// nanoseconds under JSON.
type Trace struct {
	ID       uint64    `json:"id"`       // admission sequence number
	Admitted time.Time `json:"admitted"` // wall-clock admission

	Queue     time.Duration `json:"queue_ns"`      // admission → dequeue
	BatchHold time.Duration `json:"batch_hold_ns"` // dequeue → invoke start
	Invoke    time.Duration `json:"invoke_ns"`     // invoke start → invoke end (incl. pacing)
	Settle    time.Duration `json:"settle_ns"`     // invoke end → settled
	Total     time.Duration `json:"total_ns"`      // admission → settled

	Worker  int    `json:"worker"`            // worker index, -1 when no invoke ran
	Backend string `json:"backend,omitempty"` // backend class of that worker
	Batch   int    `json:"batch,omitempty"`   // occupied rows of the serving invoke
	Breaker string `json:"breaker,omitempty"` // the worker's breaker state after the invoke
	OnHost  bool   `json:"on_host,omitempty"` // served by the degraded mode
	Err     string `json:"err,omitempty"`     // settlement error, empty on success
}

// invokeSpan carries the invoke-phase annotations from the worker that ran
// the invoke to the settle path. One span is shared by every member of a
// coalesced batch; it is written only by the worker goroutine, before any
// settle that references it.
type invokeSpan struct {
	worker  int
	backend string
	batch   int
	breaker pipeline.BreakerState
	onHost  bool
	start   time.Time
	end     time.Time
}

// traceRing is a bounded ring of the most recent settled-request traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []Trace // nil when tracing is disabled
	next int     // slot the next trace lands in
	n    int     // occupied slots
}

// newTraceRing sizes the ring: depth slots, DefaultTraceDepth when depth is
// zero, disabled when negative.
func newTraceRing(depth int) *traceRing {
	if depth == 0 {
		depth = DefaultTraceDepth
	}
	if depth < 0 {
		return &traceRing{}
	}
	return &traceRing{buf: make([]Trace, depth)}
}

// record assembles and stores the trace of one settled request. Called by
// the winning settler only, after the request's fate is decided; deq is the
// request's dequeue time as read under s.mu, now the settlement instant.
func (t *traceRing) record(r *request, o outcome, deq, now time.Time) {
	if t.buf == nil {
		return
	}
	tr := Trace{
		ID:       r.id,
		Admitted: r.enq,
		Total:    now.Sub(r.enq),
		Worker:   -1,
	}
	if !deq.IsZero() {
		tr.Queue = deq.Sub(r.enq)
	} else {
		// Settled while still queued (deadline, cancel, force-drain).
		tr.Queue = tr.Total
	}
	if o.inv != nil {
		tr.BatchHold = o.inv.start.Sub(deq)
		tr.Invoke = o.inv.end.Sub(o.inv.start)
		tr.Settle = now.Sub(o.inv.end)
		tr.Worker = o.inv.worker
		tr.Backend = o.inv.backend
		tr.Batch = o.inv.batch
		tr.Breaker = o.inv.breaker.String()
		tr.OnHost = o.inv.onHost
	}
	if o.err != nil {
		tr.Err = o.err.Error()
	}
	t.mu.Lock()
	t.buf[t.next] = tr
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// list returns the stored traces, oldest first.
func (t *traceRing) list() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.n)
	start := t.next - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i+len(t.buf))%len(t.buf)])
	}
	return out
}

// Traces returns the most recent settled-request traces, oldest first, up
// to the configured TraceDepth. Empty when tracing is disabled.
func (s *Server) Traces() []Trace {
	return s.traces.list()
}
