package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/tensor"
)

// serveBatchModel is serveModel compiled at the given batch capacity.
func serveBatchModel(t testing.TB, batch int) (pipeline.Platform, *edgetpu.CompiledModel, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p, cm, ds
}

func TestServeBatchRejectsOverCapacity(t *testing.T) {
	p, cm, _ := serveBatchModel(t, 4)
	if _, err := New(p, cm, Config{MaxBatch: 8}); err == nil {
		t.Fatal("MaxBatch 8 accepted on a batch-4 model")
	}
	s, err := New(p, cm, Config{MaxBatch: 4})
	if err != nil {
		t.Fatalf("MaxBatch at capacity rejected: %v", err)
	}
	s.Close()
}

func TestServeBatchSingleRowBitIdenticalToDirect(t *testing.T) {
	// A MaxBatch>1 server with a zero window serving one request at a time
	// degenerates to single-row invokes of the batch-capacity model. Timing
	// and predictions must be bit-identical to driving the runner's
	// InvokeBatch(1) directly on the same compiled model.
	p, cm, ds := serveBatchModel(t, 8)
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cm, Config{Devices: 1, Policy: policy, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 16; i++ {
		fill := rowFill(ds, i)
		dt, err := direct.InvokeBatch(1, fill)
		if err != nil {
			t.Fatal(err)
		}
		want := direct.Output(0).I32[0]
		var got int32
		res, err := s.Do(context.Background(), fill, func(out *tensor.Tensor) {
			got = out.I32[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Timing != dt {
			t.Fatalf("row %d: served timing %+v != direct single-row %+v", i, res.Timing, dt)
		}
		if got != want {
			t.Fatalf("row %d: served prediction %d != direct %d", i, got, want)
		}
		if res.BatchSize != 1 {
			t.Fatalf("row %d: sequential request batched %d-wide", i, res.BatchSize)
		}
	}
}

func TestServeBatchDeterministicVsSequential(t *testing.T) {
	// Concurrent requests coalesced into multi-row invokes must produce the
	// same predictions as serving each row alone on the same compiled model.
	p, cm, ds := serveBatchModel(t, 8)
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	want := make([]int32, n)
	for i := range want {
		if _, err := direct.InvokeBatch(1, rowFill(ds, i)); err != nil {
			t.Fatal(err)
		}
		want[i] = direct.Output(0).I32[0]
	}

	s, err := New(p, cm, Config{
		Devices: 1, Policy: policy,
		MaxBatch: 8, BatchWindow: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	got := make([]int32, n)
	sizes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Do(context.Background(), rowFill(ds, i), func(out *tensor.Tensor) {
				got[i] = out.I32[0]
			})
			if err != nil {
				t.Errorf("row %d: %v", i, err)
				return
			}
			sizes[i] = res.BatchSize
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: batched prediction %d != sequential %d (batch size %d)",
				i, got[i], want[i], sizes[i])
		}
	}
	maxSize := 0
	for _, sz := range sizes {
		if sz > maxSize {
			maxSize = sz
		}
	}
	if maxSize < 2 {
		t.Fatalf("no coalescing happened: batch sizes %v", sizes)
	}
	rep := s.Report()
	if rep.BatchRows != n || rep.MeanOccupancy() <= 1 {
		t.Fatalf("batching accounting off: %d rows over %d invokes", rep.BatchRows, rep.BatchInvokes)
	}
}

func TestServeBatchWindowRespectsDeadline(t *testing.T) {
	// A lone request with a deadline far shorter than the batch window must
	// dispatch on the half-slack bound and complete, never waiting out the
	// window into a deadline miss.
	p, cm, ds := serveBatchModel(t, 8)
	s, err := New(p, cm, Config{
		Devices: 1, Policy: fastPolicy(),
		MaxBatch: 8, BatchWindow: 10 * time.Second,
		DefaultDeadline: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	start := time.Now()
	res, err := s.Do(context.Background(), rowFill(ds, 0), nil)
	if err != nil {
		t.Fatalf("lone request missed its deadline under a long window: %v", err)
	}
	if el := time.Since(start); el >= 250*time.Millisecond {
		t.Fatalf("request took %v, at or past its 250ms deadline", el)
	}
	if res.BatchSize != 1 {
		t.Fatalf("lone request reports batch size %d", res.BatchSize)
	}
}

func TestServeBatchConcurrentMixedDeadlines(t *testing.T) {
	// Race-detector coverage of the coalescer: many goroutines with mixed
	// deadlines against few workers, with shedding allowed. Accounting must
	// balance no matter how requests ride batches.
	p, cm, ds := serveBatchModel(t, 8)
	s, err := New(p, cm, Config{
		Devices: 2, Policy: fastPolicy(),
		QueueCapacity: 16,
		MaxBatch:      8, BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i%7)*time.Millisecond)
				defer cancel()
			}
			var sink int32
			_, _ = s.Do(ctx, rowFill(ds, i%ds.Samples()), func(out *tensor.Tensor) {
				sink = out.I32[0]
			})
			_ = sink
		}(i)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after concurrent load: %v", err)
	}
	rep := s.Report()
	if rep.Submitted != n {
		t.Fatalf("submitted %d != %d", rep.Submitted, n)
	}
	if rep.Settled() != n {
		t.Fatalf("settled %d != submitted %d:\n%s", rep.Settled(), n, rep)
	}
	if rep.BatchRows < rep.Completed {
		t.Fatalf("batch rows %d < completed %d", rep.BatchRows, rep.Completed)
	}
}
