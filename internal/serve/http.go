package serve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"hdcedge/internal/metrics"
)

// This file exposes the live observability surface over HTTP:
//
//	GET /metrics      Prometheus text exposition of the live registry
//	GET /snapshot     JSON snapshot: health, fleet, counters, gauges,
//	                  histogram quantile digests
//	GET /traces       JSON dump of the recent settled-request traces
//	GET /debug/pprof  Go runtime profiling (the stock net/http/pprof set)
//
// Every endpoint reads from snapshots that are safe while workers are
// mid-invoke; hitting them never blocks the serving path.

// snapshotJSON is the /snapshot response body. Tenants and Models are
// omitted in legacy (single-tenant, single-model) mode, keeping the legacy
// body byte-identical; the per-tenant hdc_tenant_* counters flow through
// Counters/Histograms with their {tenant="..."} labels.
type snapshotJSON struct {
	Health     string                              `json:"health"`
	Fleet      string                              `json:"fleet"`
	Tenants    []string                            `json:"tenants,omitempty"`
	Models     []string                            `json:"models,omitempty"`
	Counters   map[string]int64                    `json:"counters"`
	Gauges     map[string]int64                    `json:"gauges"`
	Histograms map[string]metrics.HistogramSummary `json:"histograms"`
}

// Handler returns the observability endpoints as one http.Handler, ready to
// mount on any listener. The server keeps serving while handlers run.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WritePrometheus(w, s.Metrics().Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.Metrics().Snapshot()
		body := snapshotJSON{
			Health:     s.Health().String(),
			Fleet:      s.cfg.fleet().String(),
			Counters:   snap.Counters,
			Gauges:     snap.Gauges,
			Histograms: make(map[string]metrics.HistogramSummary, len(snap.Histograms)),
		}
		for _, t := range s.cfg.Tenants {
			body.Tenants = append(body.Tenants, t.Name)
		}
		if s.cfg.Registry != nil {
			body.Models = s.cfg.Registry.IDs()
		}
		for name, h := range snap.Histograms {
			body.Histograms[name] = h.Summary()
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Traces())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
