package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// serveModel trains a tiny HDC classifier and compiles single-sample
// inference for the Edge TPU; ds provides rows to serve.
func serveModel(t *testing.T) (pipeline.Platform, *edgetpu.CompiledModel, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p, cm, ds
}

// rowFill returns a fill function loading row i of ds.
func rowFill(ds *dataset.Dataset, i int) func(in *tensor.Tensor) {
	n := ds.Features()
	return func(in *tensor.Tensor) {
		copy(in.F32, ds.X.F32[i*n:(i+1)*n])
	}
}

// fastPolicy keeps wall-clock backoff negligible so fault-path tests run
// quickly even though InvokeCtx really sleeps.
func fastPolicy() pipeline.RecoveryPolicy {
	p := pipeline.DefaultRecoveryPolicy()
	p.BaseBackoff = time.Microsecond
	p.MaxBackoff = 10 * time.Microsecond
	return p
}

func TestServeBitIdenticalToDirectRunner(t *testing.T) {
	// Zero faults, unbounded queue, no deadlines, one device: each Do must
	// report per-invoke timing bit-identical to driving a ResilientRunner
	// directly, and identical predictions.
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cm, Config{Devices: 1, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const k = 16
	for i := 0; i < k; i++ {
		fill := rowFill(ds, i)
		dt, err := direct.Invoke(fill)
		if err != nil {
			t.Fatal(err)
		}
		want := direct.Output(0).I32[0]
		var got int32
		res, err := s.Do(context.Background(), fill, func(out *tensor.Tensor) {
			got = out.I32[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Timing != dt {
			t.Fatalf("row %d: served timing %+v != direct %+v", i, res.Timing, dt)
		}
		if got != want {
			t.Fatalf("row %d: served prediction %d != direct %d", i, got, want)
		}
		if res.OnHost || res.Device != 0 {
			t.Fatalf("row %d: unexpected placement %+v", i, res)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	rep := s.Report()
	if rep.Completed != k || rep.Submitted != k || rep.Shed() != 0 ||
		rep.DeadlineExceeded != 0 || rep.Failed != 0 || rep.HostFallback != 0 {
		t.Fatalf("clean run report off:\n%s", rep)
	}
	if rep.Health != Healthy {
		t.Fatalf("healthy run reports %s", rep.Health)
	}
	if rep.Reliability.Retries != 0 || rep.Reliability.FallbackInvokes != 0 {
		t.Fatalf("clean run shows recovery work: %+v", rep.Reliability)
	}
}

func TestServeShedsOnFullQueue(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{Devices: 1, QueueCapacity: 1, Policy: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Occupy the single worker: its fill blocks until released.
	var once sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	blockingFill := func(in *tensor.Tensor) {
		once.Do(func() { close(started) })
		<-release
		rowFill(ds, 0)(in)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := s.Do(context.Background(), blockingFill, nil); err != nil {
			t.Errorf("in-flight request: %v", err)
		}
	}()
	<-started
	go func() {
		defer wg.Done()
		if _, err := s.Do(context.Background(), rowFill(ds, 1), nil); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	// Wait until the second request is actually queued (admitted == 2).
	for s.Report().Admitted < 2 {
		time.Sleep(time.Millisecond)
	}
	// Queue is at capacity: the third request must shed with a typed error.
	_, err = s.Do(context.Background(), rowFill(ds, 2), nil)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Cause != ShedQueueFull {
		t.Fatalf("full queue returned %v", err)
	}
	close(release)
	wg.Wait()
	rep := s.Report()
	if rep.ShedQueueFull != 1 || rep.Completed != 2 {
		t.Fatalf("shed accounting off:\n%s", rep)
	}
}

func TestServeDeadlineCancelsMidBackoff(t *testing.T) {
	// A dead link with multi-second backoff: the per-request default
	// deadline must cancel the retry wait, not sleep it out.
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	policy.BaseBackoff = 2 * time.Second
	policy.MaxBackoff = 4 * time.Second
	s, err := New(p, cm, Config{
		Devices:         1,
		DefaultDeadline: 30 * time.Millisecond,
		Policy:          policy,
		Plan:            edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	_, err = s.Do(context.Background(), rowFill(ds, 0), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline mid-backoff returned %v", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v; backoff was waited out", elapsed)
	}
	if rep := s.Report(); rep.DeadlineExceeded != 1 {
		t.Fatalf("deadline accounting off:\n%s", rep)
	}
}

func TestServeCallerDeadlineWinsOverDefault(t *testing.T) {
	// A caller-supplied deadline must not be overridden by DefaultDeadline.
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	policy.BaseBackoff = 2 * time.Second
	policy.MaxBackoff = 4 * time.Second
	s, err := New(p, cm, Config{
		Devices:         1,
		DefaultDeadline: time.Hour,
		Policy:          policy,
		Plan:            edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Do(ctx, rowFill(ds, 0), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("caller deadline ignored for %v", elapsed)
	}
}

func TestServeDrainCompletesInFlight(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{Devices: 1, DrainDeadline: 5 * time.Second, Policy: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	blockingFill := func(in *tensor.Tensor) {
		once.Do(func() { close(started) })
		<-release
		rowFill(ds, 0)(in)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), blockingFill, nil)
		done <- err
	}()
	<-started
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Admission must refuse once draining. A probe that races in before
	// the drain flag flips gets queued behind the blocked worker, so it
	// carries a short deadline to settle and let the loop retry.
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := s.Do(ctx, rowFill(ds, 1), nil)
		cancel()
		var shed *ShedError
		if errors.As(err, &shed) && shed.Cause == ShedDraining {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request during graceful drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	rep := s.Report()
	if rep.Completed != 1 || rep.DrainForced != 0 || rep.ShedDraining < 1 {
		t.Fatalf("drain accounting off:\n%s", rep)
	}
}

func TestServeDrainDeadlineForceFails(t *testing.T) {
	// One request stuck retrying a dead link with a 30s backoff, one more
	// sitting in the queue: the drain deadline must force-fail both with
	// typed DrainErrors, and the workers must exit.
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	policy.MaxRetries = 1000
	policy.BaseBackoff = 30 * time.Second
	policy.MaxBackoff = 60 * time.Second
	policy.BreakerThreshold = 1000
	s, err := New(p, cm, Config{
		Devices:       1,
		DrainDeadline: 50 * time.Millisecond,
		Policy:        policy,
		Plan:          edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	inflight := make(chan error, 1)
	queued := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), rowFill(ds, 0), nil)
		inflight <- err
	}()
	// The first request is in-flight once admitted and dequeued; the
	// second then waits in the queue.
	for s.Report().Admitted < 1 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, err := s.Do(context.Background(), rowFill(ds, 1), nil)
		queued <- err
	}()
	for s.Report().Admitted < 2 {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	err = s.Drain(context.Background())
	var de *DrainError
	if !errors.As(err, &de) {
		t.Fatalf("forced drain returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("forced drain took %v; workers did not exit promptly", elapsed)
	}
	for name, ch := range map[string]chan error{"in-flight": inflight, "queued": queued} {
		select {
		case err := <-ch:
			if !errors.As(err, &de) {
				t.Fatalf("%s request settled with %v, want DrainError", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s request never settled", name)
		}
	}
	rep := s.Report()
	if rep.DrainForced != 2 {
		t.Fatalf("force accounting off:\n%s", rep)
	}
}

func TestServeHealthStates(t *testing.T) {
	p, cm, ds := serveModel(t)
	policy := fastPolicy()
	policy.MaxRetries = 1
	policy.BreakerThreshold = 2
	policy.BreakerCooldown = 0 // keep tripped breakers open for a stable read

	// Concurrent bursts with per-invoke pacing keep both workers busy, so
	// every device must serve some of the load (sequential submission would
	// let one idle worker monopolize the queue).
	burst := func(s *Server, rounds int, stop func() bool) {
		t.Helper()
		for i := 0; i < rounds && !stop(); i++ {
			var wg sync.WaitGroup
			for j := 0; j < 4; j++ {
				wg.Add(1)
				go func(row int) {
					defer wg.Done()
					if _, err := s.Do(context.Background(), rowFill(ds, row%ds.Samples()), nil); err != nil {
						t.Errorf("burst request: %v", err)
					}
				}(i*4 + j)
			}
			wg.Wait()
		}
	}

	// One dead device of two → Degraded (work still completes via the
	// healthy device and the dead one's host fallback).
	s, err := New(p, cm, Config{
		Devices:       2,
		Policy:        policy,
		PacePerInvoke: time.Millisecond,
		Plans: []edgetpu.FaultPlan{
			{Seed: 1, LinkErrorRate: 1},
			{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Health() != Healthy {
		t.Fatalf("fresh server health %s", s.Health())
	}
	burst(s, 50, func() bool { return s.Health() == Degraded })
	if got := s.Health(); got != Degraded {
		t.Fatalf("one dead device of two: health %s", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every device dead → Critical.
	s2, err := New(p, cm, Config{
		Devices:       2,
		Policy:        policy,
		PacePerInvoke: time.Millisecond,
		Plan:          edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	burst(s2, 50, func() bool { return s2.Health() == Critical })
	if got := s2.Health(); got != Critical {
		t.Fatalf("all devices dead: health %s", got)
	}
	if rep := s2.Report(); rep.HostFallback == 0 || !rep.Reliability.BreakerTripped {
		t.Fatalf("critical server did not degrade to host:\n%s", rep)
	}
}

func TestServeConcurrentLoadBalances(t *testing.T) {
	// Hammer a four-device server from many goroutines; every submitted
	// request must settle and the counters must balance. Run under -race.
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{Devices: 4, Policy: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	const requests = 200
	var wg sync.WaitGroup
	var completed atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			for i := 0; i < requests/8; i++ {
				row := int(r.Uint64() % uint64(ds.Samples()))
				_, err := s.Do(context.Background(), rowFill(ds, row), func(out *tensor.Tensor) {
					if len(out.I32) == 0 {
						t.Error("empty output tensor")
					}
				})
				if err != nil {
					t.Errorf("request failed: %v", err)
					continue
				}
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
	rep := s.Report()
	if rep.Submitted != requests || rep.Completed != requests || int(completed.Load()) != requests {
		t.Fatalf("load accounting off:\n%s", rep)
	}
	if rep.Settled() != rep.Submitted {
		t.Fatalf("settled %d != submitted %d:\n%s", rep.Settled(), rep.Submitted, rep)
	}
	if rep.Latency.Count() != requests {
		t.Fatalf("latency histogram holds %d of %d", rep.Latency.Count(), requests)
	}
}

func TestServeConfigValidate(t *testing.T) {
	bad := []Config{
		{Devices: -1},
		{DefaultDeadline: -time.Second},
		{DrainDeadline: -time.Second},
		{PacePerInvoke: -time.Second},
		{PaceScale: -0.5},
		{MaxBatch: -1},
		{BatchWindow: -time.Millisecond},
		{Devices: 2, Plans: []edgetpu.FaultPlan{{}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}
