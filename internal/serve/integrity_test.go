package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/integrity"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/tensor"
)

// TestServeIntegrityScrubRepairsSEU is the seeded SEU smoke scenario (see
// `make seu-smoke`): a single device takes a heavy bit-flip rate while
// serving, and the scrubbing layer must detect the corruption and close
// every incident through the repair ladder — no quarantine, since a
// re-upload of pristine bytes always heals SEU damage.
func TestServeIntegrityScrubRepairsSEU(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{
		Devices: 1,
		Policy:  fastPolicy(),
		Plan:    edgetpu.FaultPlan{Seed: 5, BitFlipRate: 1e-3},
		Integrity: &integrity.Policy{
			ScrubInterval: 200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const reqs = 200
	for i := 0; i < reqs; i++ {
		if _, err := s.Do(context.Background(), rowFill(ds, i%ds.Samples()), nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if i%25 == 24 {
			time.Sleep(300 * time.Microsecond) // idle gaps let scrubs run
		}
	}
	time.Sleep(time.Millisecond) // one more idle window for a final scrub
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	rep := s.Report()
	g := rep.Integrity
	if g == nil {
		t.Fatal("integrity-enabled server reports no integrity section")
	}
	if g.Scrubs == 0 {
		t.Fatal("no scrubs ran")
	}
	// At ~1e-3 per bit per invoke over a ~40 kbit resident image, every
	// scrub window sees flips; zero detections means scrubbing is broken.
	if g.Corruptions == 0 {
		t.Fatalf("SEU storm went undetected: %+v", g)
	}
	if g.Incidents == 0 || g.Repaired != g.Incidents {
		t.Fatalf("incidents not all repaired: %+v", g)
	}
	if g.Restores == 0 {
		t.Fatalf("no segment re-uploads: %+v", g)
	}
	if g.Quarantines != 0 || g.Quarantined {
		t.Fatalf("SEU damage must heal without quarantine: %+v", g)
	}
	if g.TimeToRepair.Count() != g.Repaired {
		t.Fatalf("time-to-repair count %d != repaired %d", g.TimeToRepair.Count(), g.Repaired)
	}
	if g.RepairSimTime <= 0 {
		t.Fatal("repair actions cost no simulated time")
	}
	evs := s.IntegrityEvents()
	if len(evs) == 0 {
		t.Fatal("no repair events retained")
	}
	for _, e := range evs {
		if e.Trigger != integrity.TriggerScrub {
			t.Fatalf("unexpected trigger: %+v", e)
		}
	}
	if rep.Health != Healthy {
		t.Fatalf("self-healed server reports %s", rep.Health)
	}
	// The metric mirrors of the report must agree.
	snap := s.Metrics().Snapshot()
	if snap.Counters[`hdc_integrity_scrubs_total{worker="0",backend="tpu"}`] != int64(g.Scrubs) {
		t.Fatalf("scrub counter disagrees with report: %v vs %d",
			snap.Counters[`hdc_integrity_scrubs_total{worker="0",backend="tpu"}`], g.Scrubs)
	}
	if snap.Counters[`hdc_integrity_repairs_total{action="segment-reupload",worker="0",backend="tpu"}`] != int64(g.Restores) {
		t.Fatal("repair counter disagrees with report")
	}
}

// TestServeIntegrityCanaryQuarantinesUnrepairable walks the whole ladder:
// canaries that can never pass (their recorded labels are impossible) fail
// after reload and reset alike, so the worker must end quarantined — and
// the server must keep serving from the host through the open breaker.
func TestServeIntegrityCanaryQuarantinesUnrepairable(t *testing.T) {
	p, cm, ds := serveModel(t)
	n := ds.Features()
	canary := integrity.Canary{
		Input: append([]float32(nil), ds.X.F32[:n]...),
		Label: -7, // no argmax ever returns this
	}
	s, err := New(p, cm, Config{
		Devices: 1,
		Policy:  fastPolicy(),
		Integrity: &integrity.Policy{
			CanaryInterval: time.Millisecond,
			Canaries:       []integrity.Canary{canary},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if rep := s.Report(); rep.Integrity != nil && rep.Integrity.Quarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never quarantined: %+v", s.Report().Integrity)
		}
		time.Sleep(time.Millisecond)
	}

	evs := s.IntegrityEvents()
	if len(evs) != 3 {
		t.Fatalf("want reload/reset/quarantine events, got %v", evs)
	}
	wantActions := []integrity.Action{integrity.ActionReload, integrity.ActionReset, integrity.ActionQuarantine}
	for i, e := range evs {
		if e.Action != wantActions[i] || e.Seq != i+1 || e.Trigger != integrity.TriggerCanary {
			t.Fatalf("event %d: %+v", i, e)
		}
		if e.Repaired {
			t.Fatalf("unrepairable incident closed: %+v", e)
		}
	}

	// The quarantined worker serves through its degraded mode: requests
	// still complete, on the host, and health reflects the lost device.
	res, err := s.Do(context.Background(), rowFill(ds, 0), nil)
	if err != nil {
		t.Fatalf("quarantined serve: %v", err)
	}
	if !res.OnHost {
		t.Fatalf("quarantined worker served on device: %+v", res)
	}
	if h := s.Health(); h == Healthy {
		t.Fatalf("quarantined fleet reports %s", h)
	}
	rep := s.Report()
	if rep.Integrity.Quarantines != 1 || rep.Integrity.Repaired != 0 {
		t.Fatalf("report off: %+v", rep.Integrity)
	}
	snap := s.Metrics().Snapshot()
	if snap.Gauges[`hdc_integrity_quarantined{worker="0",backend="tpu"}`] != 1 {
		t.Fatal("quarantined gauge not set")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain of quarantined server: %v", err)
	}
}

// TestServeDrainDuringCanaryBackoffSettles extends the drain-vs-hang race
// coverage to integrity maintenance: a canary invoke wedged in retry
// backoff behind a dead link must be cut short by the drain force path, the
// pass must abort quietly (no quarantine), and Drain must return.
func TestServeDrainDuringCanaryBackoffSettles(t *testing.T) {
	p, cm, ds := serveModel(t)
	n := ds.Features()
	policy := pipeline.DefaultRecoveryPolicy()
	policy.BaseBackoff = time.Minute // wedge: only cancellation gets out
	policy.MaxBackoff = time.Minute
	s, err := New(p, cm, Config{
		Devices:       1,
		Policy:        policy,
		Plan:          edgetpu.FaultPlan{Seed: 3, LinkErrorRate: 1},
		DrainDeadline: 50 * time.Millisecond,
		Integrity: &integrity.Policy{
			CanaryInterval: time.Millisecond,
			Canaries: []integrity.Canary{{
				Input: append([]float32(nil), ds.X.F32[:n]...),
				Label: 0,
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Let the canary pass start and sink into its minute-long backoff.
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	err = s.Drain(context.Background())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v with a wedged canary", elapsed)
	}
	var de *DrainError
	if err != nil && !errors.As(err, &de) {
		t.Fatalf("drain returned %v", err)
	}
	rep := s.Report()
	if rep.Integrity == nil {
		t.Fatal("no integrity report")
	}
	if rep.Integrity.Quarantines != 0 {
		t.Fatalf("aborted canary pass quarantined the worker: %+v", rep.Integrity)
	}
}

// TestServeIntegrityDisabledBitIdentical is the regression gate for the
// integrity layer's zero-cost-when-off guarantee: a server with a disabled
// (zero) integrity policy must produce per-invoke timing and predictions
// bit-identical to a direct ResilientRunner, exactly like a nil policy.
func TestServeIntegrityDisabledBitIdentical(t *testing.T) {
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cm, Config{
		Devices:   1,
		Policy:    policy,
		Integrity: &integrity.Policy{}, // present but disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 16; i++ {
		fill := rowFill(ds, i)
		dt, err := direct.Invoke(fill)
		if err != nil {
			t.Fatal(err)
		}
		want := direct.Output(0).I32[0]
		var got int32
		res, err := s.Do(context.Background(), fill, func(out *tensor.Tensor) {
			got = out.I32[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Timing != dt || got != want {
			t.Fatalf("row %d diverged: timing %+v vs %+v, pred %d vs %d", i, res.Timing, dt, got, want)
		}
	}
	rep := s.Report()
	if rep.Integrity != nil {
		t.Fatalf("disabled policy produced an integrity report: %+v", rep.Integrity)
	}
}
