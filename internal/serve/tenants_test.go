package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/tensor"
)

func TestParseTenantsTable(t *testing.T) {
	good := []struct {
		spec string
		want []TenantSpec
	}{
		{"free", []TenantSpec{{Name: "free"}}},
		{"prod=w4,p1,q64,d50ms;batch=w1,q16;free", []TenantSpec{
			{Name: "prod", Weight: 4, Priority: 1, Quota: 64, Deadline: 50 * time.Millisecond},
			{Name: "batch", Weight: 1, Quota: 16},
			{Name: "free"},
		}},
		{" a = w2 ; b ", []TenantSpec{{Name: "a", Weight: 2}, {Name: "b"}}},
	}
	for _, tc := range good {
		got, err := ParseTenants(tc.spec)
		if err != nil {
			t.Fatalf("ParseTenants(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseTenants(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}

	bad := []string{
		"", "  ", ";", "a;;b", "a;a", "=w1", "a=", "a=w0", "a=w-1", "a=wx",
		"a=p-1", "a=q-1", "a=d-5ms", "a=dxyz", "a=z9", "a=w1,w2", "a=,",
	}
	for _, spec := range bad {
		if _, err := ParseTenants(spec); err == nil {
			t.Fatalf("ParseTenants(%q) accepted a bad spec", spec)
		} else {
			var te *TenantError
			if !errors.As(err, &te) {
				t.Fatalf("ParseTenants(%q) error %T is not *TenantError", spec, err)
			}
		}
	}
}

func TestParseModelsTable(t *testing.T) {
	got, err := ParseModels("main=d2048;wide=d4096;tiny")
	if err != nil {
		t.Fatal(err)
	}
	want := []ModelSpec{{Name: "main", Dim: 2048}, {Name: "wide", Dim: 4096}, {Name: "tiny"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for _, spec := range []string{"", ";", "a;;b", "a;a", "=d1", "a=", "a=d0", "a=d-1", "a=w4", "a=dx"} {
		if _, err := ParseModels(spec); err == nil {
			t.Fatalf("ParseModels(%q) accepted a bad spec", spec)
		} else {
			var me *ModelError
			if !errors.As(err, &me) {
				t.Fatalf("ParseModels(%q) error %T is not *ModelError", spec, err)
			}
		}
	}
}

// FuzzParseTenants checks the parser never panics and that every accepted
// spec satisfies its own invariants (non-empty unique names, positive
// effective weights, non-negative quotas and deadlines).
func FuzzParseTenants(f *testing.F) {
	for _, seed := range []string{
		"prod=w4,p1,q64,d50ms;batch=w1,q16;free", "a;b;c", "a=w1", "=", ";;", "a=d1h",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		tenants, err := ParseTenants(spec)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, tn := range tenants {
			if tn.Name == "" || seen[tn.Name] {
				t.Fatalf("accepted spec %q with empty/duplicate name: %+v", spec, tenants)
			}
			seen[tn.Name] = true
			if tn.weight() < 1 || tn.Quota < 0 || tn.Deadline < 0 || tn.Priority < 0 {
				t.Fatalf("accepted spec %q with invalid tenant %+v", spec, tn)
			}
		}
		cfg := Config{Tenants: tenants}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("parsed tenants from %q fail Config.Validate: %v", spec, err)
		}
	})
}

// FuzzParseModels mirrors FuzzParseTenants for the model-spec grammar.
func FuzzParseModels(f *testing.F) {
	for _, seed := range []string{"main=d2048;wide=d4096;tiny", "a;b", "a=d1", "=", "a=dx"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		models, err := ParseModels(spec)
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, m := range models {
			if m.Name == "" || seen[m.Name] || m.Dim < 0 {
				t.Fatalf("accepted spec %q with invalid model %+v", spec, m)
			}
			seen[m.Name] = true
		}
	})
}

// dummyReq builds an unqueued request for scheduler-level tests.
func dummyReq(model string) *request {
	return &request{ctx: context.Background(), model: model, res: make(chan outcome, 1)}
}

func TestSchedulerWeightedFairShares(t *testing.T) {
	sc := newScheduler([]TenantSpec{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}})
	ta, _ := sc.tenant("a")
	tb, _ := sc.tenant("b")
	for i := 0; i < 12; i++ {
		sc.push(ta, dummyReq(""))
		sc.push(tb, dummyReq(""))
	}
	counts := map[*tenantState]int{}
	for i := 0; i < 8; i++ {
		la, lb := len(ta.q), len(tb.q)
		if r := sc.next(); r == nil {
			t.Fatal("scheduler ran dry")
		}
		switch {
		case len(ta.q) == la-1:
			counts[ta]++
		case len(tb.q) == lb-1:
			counts[tb]++
		default:
			t.Fatal("could not attribute pop")
		}
	}
	if counts[ta] != 6 || counts[tb] != 2 {
		t.Fatalf("w3:w1 shares over 8 pops = %d:%d, want 6:2", counts[ta], counts[tb])
	}
}

func TestSchedulerStrictPriority(t *testing.T) {
	sc := newScheduler([]TenantSpec{{Name: "low"}, {Name: "high", Priority: 1}})
	tl, _ := sc.tenant("low")
	th, _ := sc.tenant("high")
	for i := 0; i < 3; i++ {
		sc.push(tl, dummyReq(""))
		sc.push(th, dummyReq(""))
	}
	// All high-priority requests dispatch before any low-priority one.
	for i := 0; i < 3; i++ {
		sc.next()
		if got := len(th.q); got != 3-i-1 {
			t.Fatalf("pop %d: high queue %d, want %d", i, got, 3-i-1)
		}
		if len(tl.q) != 3 {
			t.Fatalf("pop %d drained the low-priority queue early", i)
		}
	}
}

func TestSchedulerIdleCatchUp(t *testing.T) {
	sc := newScheduler([]TenantSpec{{Name: "a"}, {Name: "b"}})
	ta, _ := sc.tenant("a")
	tb, _ := sc.tenant("b")
	for i := 0; i < 10; i++ {
		sc.push(ta, dummyReq(""))
	}
	for i := 0; i < 5; i++ {
		sc.next()
	}
	// b was idle while a burned virtual time; on wake it must not get 5
	// pops of banked credit — it catches up to a's pass and they alternate.
	sc.push(tb, dummyReq(""))
	sc.push(tb, dummyReq(""))
	if tb.pass != ta.pass {
		t.Fatalf("idle tenant woke with pass %v, active peer at %v", tb.pass, ta.pass)
	}
	order := []int{len(ta.q), len(tb.q)}
	sc.next() // tie → registration order → a
	sc.next() // b
	if len(ta.q) != order[0]-1 || len(tb.q) != order[1]-1 {
		t.Fatalf("post-wake pops not alternating: a %d→%d, b %d→%d",
			order[0], len(ta.q), order[1], len(tb.q))
	}
}

func TestServeTenantQuotaShed(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{
		Devices: 1, Policy: fastPolicy(),
		Tenants: []TenantSpec{{Name: "prod", Quota: 1}, {Name: "batch"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Block the single worker so queued work stays queued.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blockingFill := func(in *tensor.Tensor) {
		once.Do(func() { close(started) })
		<-release
		rowFill(ds, 0)(in)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = s.Submit(context.Background(), Request{Tenant: "prod", Fill: blockingFill})
	}()
	<-started
	go func() {
		defer wg.Done()
		_, _ = s.Submit(context.Background(), Request{Tenant: "prod", Fill: rowFill(ds, 1)})
	}()
	// Wait for the second prod request to be queued (quota 1 reached).
	for {
		s.mu.Lock()
		tp, _ := s.sched.tenant("prod")
		depth := len(tp.q)
		s.mu.Unlock()
		if depth == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	_, err = s.Submit(context.Background(), Request{Tenant: "prod", Fill: rowFill(ds, 2)})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Cause != ShedTenantQuota {
		t.Fatalf("over-quota submit got %v, want ShedTenantQuota", err)
	}
	// The other tenant is not affected by prod's quota.
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{Tenant: "batch", Fill: rowFill(ds, 3)})
		done <- err
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("batch tenant blocked by prod quota: %v", err)
	}
	wg.Wait()

	rep := s.Report()
	if rep.ShedTenantQuota != 1 || rep.Shed() != 1 {
		t.Fatalf("shed accounting off:\n%s", rep)
	}
	ts, ok := rep.Tenant("prod")
	if !ok || ts.Shed != 1 || ts.Admitted != 2 {
		t.Fatalf("prod tenant stats %+v", ts)
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters[`hdc_tenant_shed_total{tenant="prod"}`] != 1 {
		t.Fatalf("tenant shed counter missing: %v", snap.Counters)
	}
	if snap.Counters[`hdc_serve_shed_total{cause="tenant_quota"}`] != 1 {
		t.Fatalf("serve-level tenant_quota cause missing: %v", snap.Counters)
	}
}

func TestServeUnknownTenantAndModel(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{Devices: 1, Policy: fastPolicy(),
		Tenants: []TenantSpec{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ut *UnknownTenantError
	if _, err := s.Submit(context.Background(), Request{Tenant: "nope", Fill: rowFill(ds, 0)}); !errors.As(err, &ut) {
		t.Fatalf("unknown tenant got %v", err)
	}
	var um *UnknownModelError
	if _, err := s.Submit(context.Background(), Request{Tenant: "a", Model: "ghost", Fill: rowFill(ds, 0)}); !errors.As(err, &um) {
		t.Fatalf("model on registry-less server got %v", err)
	}
	rep := s.Report()
	if rep.Submitted != 0 {
		t.Fatalf("caller bugs counted as load:\n%s", rep)
	}
}

func TestServeTenantDeadlineApplies(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{
		Devices: 1, Policy: fastPolicy(),
		Tenants: []TenantSpec{{Name: "slow"}, {Name: "fast", Deadline: 2 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blockingFill := func(in *tensor.Tensor) {
		once.Do(func() { close(started) })
		<-release
		rowFill(ds, 0)(in)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Submit(context.Background(), Request{Tenant: "slow", Fill: blockingFill})
	}()
	<-started
	_, err = s.Submit(context.Background(), Request{Tenant: "fast", Fill: rowFill(ds, 1)})
	close(release)
	wg.Wait()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("tenant deadline did not fire: %v", err)
	}
	rep := s.Report()
	ts, _ := rep.Tenant("fast")
	if ts.DeadlineMissed != 1 {
		t.Fatalf("fast tenant deadline accounting %+v", ts)
	}
}

// serveRegistry registers n compiled variants of the serve model under
// "m0".."m<n-1>", all the same footprint.
func serveRegistry(t *testing.T, p pipeline.Platform, ds *dataset.Dataset, n int) *registry.Registry {
	t.Helper()
	g := registry.New()
	for i := 0; i < n; i++ {
		model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
			Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: uint64(9 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		cm, err := pipeline.CompileInference(p, model, ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Register("m"+string(rune('0'+i)), cm, nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestServeRegistrySingleModelBitIdentical(t *testing.T) {
	// A registry-mode server holding exactly one (preloaded) model must
	// produce bit-identical Timing and predictions to the legacy server —
	// the default model pays no re-setup, ever.
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	g := registry.New()
	if _, err := g.Register("only", cm, nil); err != nil {
		t.Fatal(err)
	}
	legacy, err := New(p, cm, Config{Devices: 1, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	multi, err := New(p, nil, Config{Devices: 1, Policy: policy, Registry: g})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	for i := 0; i < 12; i++ {
		fill := rowFill(ds, i)
		var lv, mv int32
		lres, err := legacy.Do(context.Background(), fill, func(out *tensor.Tensor) { lv = out.I32[0] })
		if err != nil {
			t.Fatal(err)
		}
		mres, err := multi.Do(context.Background(), fill, func(out *tensor.Tensor) { mv = out.I32[0] })
		if err != nil {
			t.Fatal(err)
		}
		if lres.Timing != mres.Timing {
			t.Fatalf("row %d: registry timing %+v != legacy %+v", i, mres.Timing, lres.Timing)
		}
		if lv != mv {
			t.Fatalf("row %d: registry prediction %d != legacy %d", i, mv, lv)
		}
		if mres.Swap != 0 {
			t.Fatalf("row %d: preloaded default model billed swap %v", i, mres.Swap)
		}
		if mres.Model != "only" {
			t.Fatalf("row %d: model %q", i, mres.Model)
		}
	}
	evs := multi.RegistryEvents()
	for _, e := range evs {
		if e.Kind != registry.EvHit {
			t.Fatalf("single-model registry serving missed: %v", evs)
		}
	}
}

func TestServeMultiModelDispatchAndSwapBilling(t *testing.T) {
	p, _, ds := serveModel(t)
	g := serveRegistry(t, p, ds, 2)
	e0, _ := g.Get("m0")
	// Budget fits exactly one model: alternating requests must thrash.
	s, err := New(p, nil, Config{
		Devices: 1, Policy: fastPolicy(),
		Registry: g, MemBudget: e0.Footprint, MemPolicy: registry.EvictLRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 4; i++ {
		model := "m" + string(rune('0'+i%2))
		res, err := s.Submit(context.Background(), Request{Model: model, Fill: rowFill(ds, i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Model != model {
			t.Fatalf("request %d served by %q, want %q", i, res.Model, model)
		}
		if i == 0 {
			if res.Swap != 0 {
				t.Fatalf("preloaded first model billed swap %v", res.Swap)
			}
			continue
		}
		e, _ := g.Get(model)
		if res.Swap != e.Setup {
			t.Fatalf("request %d swap %v, want full re-setup %v", i, res.Swap, e.Setup)
		}
		if res.Timing.WeightStream < e.Setup {
			t.Fatalf("request %d swap not billed into WeightStream: %+v", i, res.Timing)
		}
	}
	rep := s.Report()
	m1, ok := rep.Model("m1")
	if !ok || m1.Requests != 2 || m1.Swap <= 0 {
		t.Fatalf("model stats %+v", rep.Models)
	}
	if len(rep.Memory) != 1 || rep.Memory[0].Evictions == 0 {
		t.Fatalf("memory stats %+v", rep.Memory)
	}
}

func TestServeHotSwapInvalidatesBind(t *testing.T) {
	p, cm, ds := serveModel(t)
	g := registry.New()
	if _, err := g.Register("m", cm, nil); err != nil {
		t.Fatal(err)
	}
	s, err := New(p, nil, Config{Devices: 1, Policy: fastPolicy(), Registry: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(context.Background(), Request{Fill: rowFill(ds, 0)}); err != nil {
		t.Fatal(err)
	}
	model2, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 1, LearningRate: 1, Nonlinear: true, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := pipeline.CompileInference(p, model2, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.Swap("m", cm2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Submit(context.Background(), Request{Fill: rowFill(ds, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swap != e2.Setup {
		t.Fatalf("post-swap request billed %v, want re-upload %v", res.Swap, e2.Setup)
	}
	ms, _ := s.Report().Model("m")
	if ms.Version != 2 {
		t.Fatalf("report shows version %d after swap", ms.Version)
	}
}

// TestServeEvictionDeterministic drives the same multi-model arrival order
// through two servers and requires identical residency event streams and
// identical re-setup billing. Runs under -race via make tenant-smoke.
func TestServeEvictionDeterministic(t *testing.T) {
	p, _, ds := serveModel(t)
	run := func() ([]registry.Event, []registry.MemStats) {
		g := serveRegistry(t, p, ds, 3)
		e0, _ := g.Get("m0")
		s, err := New(p, nil, Config{
			Devices: 1, Policy: fastPolicy(),
			Registry: g, MemBudget: 2 * e0.Footprint, MemPolicy: registry.EvictLRU,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i, m := range []string{"m0", "m1", "m0", "m2", "m0", "m1"} {
			if _, err := s.Submit(context.Background(), Request{Model: m, Fill: rowFill(ds, i)}); err != nil {
				t.Fatal(err)
			}
		}
		return s.RegistryEvents(), s.Report().Memory
	}
	ev1, st1 := run()
	ev2, st2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event streams diverge:\n%v\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("billing diverges: %+v vs %+v", st1, st2)
	}
	if st1[0].Evictions == 0 || st1[0].SwapTime == 0 {
		t.Fatalf("scenario exercised no eviction pressure: %+v", st1)
	}
}

// TestServeTenantSnapshotMonotone hammers a tenanted server from several
// goroutines while snapshotting concurrently: every per-tenant counter must
// be monotone non-decreasing across snapshots, and the books must balance
// at quiescence. Runs under -race via make tenant-smoke.
func TestServeTenantSnapshotMonotone(t *testing.T) {
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{
		Devices: 2, Policy: fastPolicy(), QueueCapacity: 32,
		Tenants: []TenantSpec{{Name: "a", Weight: 2}, {Name: "b", Quota: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := []string{
		`hdc_tenant_admitted_total{tenant="a"}`,
		`hdc_tenant_completed_total{tenant="a"}`,
		`hdc_tenant_admitted_total{tenant="b"}`,
		`hdc_tenant_shed_total{tenant="b"}`,
		`hdc_tenant_completed_total{tenant="b"}`,
	}
	stop := make(chan struct{})
	snapErr := make(chan error, 1)
	go func() {
		defer close(snapErr)
		last := map[string]int64{}
		for {
			snap := s.Metrics().Snapshot()
			for _, k := range keys {
				if snap.Counters[k] < last[k] {
					snapErr <- errors.New("counter " + k + " went backwards")
					return
				}
				last[k] = snap.Counters[k]
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := "a"
			if g%2 == 1 {
				tenant = "b"
			}
			for i := 0; i < 25; i++ {
				_, _ = s.Submit(context.Background(), Request{Tenant: tenant, Fill: rowFill(ds, i%16)})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-snapErr; err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	var adm, done, shed int
	for _, ts := range rep.Tenants {
		adm += ts.Admitted
		done += ts.Completed
		shed += ts.Shed
		if ts.Completed > ts.Admitted {
			t.Fatalf("tenant %s completed %d > admitted %d", ts.Name, ts.Completed, ts.Admitted)
		}
	}
	if adm != rep.Admitted || done != rep.Completed || shed != rep.Shed() {
		t.Fatalf("per-tenant books disagree with totals:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "tenant a") {
		t.Fatalf("report does not render tenants:\n%s", rep)
	}
}
