package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/backend/binhd"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/tensor"
)

// benchFill fills every occupied row of the batch input from the dataset.
func benchFill(x *tensor.Tensor, rows int) func(in *tensor.Tensor) {
	n := x.Shape[1]
	return func(in *tensor.Tensor) {
		copy(in.F32[:rows*n], x.F32[:rows*n])
	}
}

// BenchmarkInvokeBatch measures one device invoke at increasing occupancy of
// a batch-16 compiled model. b.N invokes; per-sample wall cost is ns/op
// divided by the row count.
func BenchmarkInvokeBatch(b *testing.B) {
	p, cm, ds := serveBatchModel(b, 16)
	r, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, pipeline.DefaultRecoveryPolicy())
	if err != nil {
		b.Fatal(err)
	}
	for _, rows := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			fill := benchFill(ds.X, rows)
			if _, err := r.InvokeBatch(rows, fill); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.InvokeBatch(rows, fill); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestInvokeBatchSteadyStateAllocs(t *testing.T) {
	// The serving hot path must not allocate per invoke beyond a small
	// fixed overhead: the accumulator comes from a pool, activation views
	// and LUTs are cached after the first invoke. Pinned to one P so
	// ParallelFor runs inline and the measurement is deterministic.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	p, cm, ds := serveBatchModel(t, 8)
	r, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, pipeline.DefaultRecoveryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 8} {
		fill := benchFill(ds.X, rows)
		for i := 0; i < 3; i++ { // warm caches and the pool
			if _, err := r.InvokeBatch(rows, fill); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(50, func() {
			if _, err := r.InvokeBatch(rows, fill); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 8 {
			t.Errorf("rows=%d: %v allocs per steady-state invoke, want <= 8", rows, avg)
		}
	}
}

// serveBenchRow is one line of BENCH_serve.json.
type serveBenchRow struct {
	Rows            int     `json:"rows"`
	WallNsPerInvoke int64   `json:"wall_ns_per_invoke"`
	WallNsPerSample int64   `json:"wall_ns_per_sample"`
	SimUsPerSample  float64 `json:"sim_us_per_sample"`
	AllocsPerInvoke int64   `json:"allocs_per_invoke"`
}

// serveFleetBench is the heterogeneous-fleet throughput row of
// BENCH_serve.json: a mixed pool under fixed open-loop load.
type serveFleetBench struct {
	Fleet        string  `json:"fleet"`
	Offered      int     `json:"offered"`
	Completed    int     `json:"completed"`
	TPURequests  int     `json:"tpu_requests"`
	CPURequests  int     `json:"cpu_requests"`
	CompletedRPS float64 `json:"completed_rps"`
	P99Us        int64   `json:"e2e_p99_us"`
}

// measureFleetBench drives a short open-loop burst through a mixed fleet.
func measureFleetBench(t *testing.T, p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset) serveFleetBench {
	t.Helper()
	fleet, err := ParseFleet("tpu=2,cpu=2")
	if err != nil {
		t.Fatal(err)
	}
	const (
		n       = 200
		service = time.Millisecond
	)
	s, err := New(p, cm, Config{
		Fleet:         fleet,
		QueueCapacity: 8,
		DrainDeadline: 5 * time.Second,
		PacePerInvoke: service,
		PaceScale:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	interarrival := service / time.Duration(2*len(fleet)) // 2x fleet capacity
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Do(context.Background(), benchFill(ds.X, 1), nil) // sheds are expected at 2x
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Failed > 0 {
		t.Fatalf("%d fleet-bench requests failed:\n%s", rep.Failed, rep)
	}
	row := serveFleetBench{
		Fleet:        fleet.String(),
		Offered:      rep.Submitted,
		Completed:    rep.Completed,
		CompletedRPS: float64(rep.Completed) / elapsed.Seconds(),
		P99Us:        rep.Latency.Quantile(0.99).Microseconds(),
	}
	for _, b := range rep.Backends {
		switch b.Name {
		case "tpu":
			row.TPURequests = b.Requests
		case "cpu":
			row.CPURequests = b.Requests
		}
	}
	return row
}

// serveTenantBenchRow is one tenant's share of the weighted-fair bench.
type serveTenantBenchRow struct {
	Tenant       string  `json:"tenant"`
	Weight       int     `json:"weight"`
	Completed    int     `json:"completed"`
	Shed         int     `json:"shed"`
	CompletedRPS float64 `json:"completed_rps"`
	P99Us        int64   `json:"e2e_p99_us"`
}

// serveTenantBench is the multi-tenant throughput section of
// BENCH_serve.json: two tenants of unequal weight saturating a small pool,
// showing the weighted-fair scheduler's completion split.
type serveTenantBench struct {
	Note    string                `json:"note"`
	Tenants []serveTenantBenchRow `json:"tenants"`
}

// measureTenantBench saturates two paced workers with an equal offered
// stream from a weight-3 and a weight-1 tenant; the completion split is
// the scheduler's work.
func measureTenantBench(t *testing.T, p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset) serveTenantBench {
	t.Helper()
	const (
		n       = 400 // per tenant
		service = time.Millisecond
	)
	tenants := []TenantSpec{
		{Name: "gold", Weight: 3, Quota: 8},
		{Name: "bronze", Weight: 1, Quota: 8},
	}
	s, err := New(p, cm, Config{
		Devices:       2,
		DrainDeadline: 5 * time.Second,
		PacePerInvoke: service,
		Tenants:       tenants,
	})
	if err != nil {
		t.Fatal(err)
	}
	interarrival := service / 8 // both tenants together offer 4x capacity
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2*n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := tenants[i%2].Name
			// Quota sheds are the point of the saturation.
			s.Submit(context.Background(), Request{Tenant: tenant, Fill: benchFill(ds.X, 1)})
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Failed > 0 {
		t.Fatalf("%d tenant-bench requests failed:\n%s", rep.Failed, rep)
	}
	bench := serveTenantBench{
		Note: "equal offered load from unequal-weight tenants at 4x capacity; completion split is the WFQ share",
	}
	for _, ts := range rep.Tenants {
		bench.Tenants = append(bench.Tenants, serveTenantBenchRow{
			Tenant:       ts.Name,
			Weight:       ts.Weight,
			Completed:    ts.Completed,
			Shed:         ts.Shed,
			CompletedRPS: float64(ts.Completed) / elapsed.Seconds(),
			P99Us:        ts.Latency.Quantile(0.99).Microseconds(),
		})
	}
	return bench
}

// binhdBenchRow is one engine's cost at the binhd comparison shape.
type binhdBenchRow struct {
	Backend         string  `json:"backend"` // "int8" (interpreter graph) or "bin"
	WallNsPerInvoke int64   `json:"wall_ns_per_invoke"`
	WallNsPerSample int64   `json:"wall_ns_per_sample"`
	SimUsPerSample  float64 `json:"sim_us_per_sample"`
	AllocsPerInvoke int64   `json:"allocs_per_invoke"`
}

// binhdBench is the binary-HDC section of BENCH_serve.json: the int8
// reference path and the bit-packed binhd backend at the same trained
// model and batch, with the headline wall-clock speedup.
type binhdBench struct {
	Note        string          `json:"note"`
	Features    int             `json:"features"`
	Dim         int             `json:"dim"`
	Classes     int             `json:"classes"`
	Capacity    int             `json:"batch_capacity"`
	Rows        []binhdBenchRow `json:"rows"`
	SpeedupWall float64         `json:"speedup_wall"` // int8 wall-ns-per-sample / bin
}

// measureBinHDBench benchmarks full-batch invokes of the int8 graph and
// the binhd backend over one trained model at the comparison shape
// (n=16 features, d=1024, k=26 — where the packed similarity scan
// dominates the int8 class GEMM).
func measureBinHDBench(t *testing.T) binhdBench {
	t.Helper()
	const (
		n, d, k  = 16, 1024, 26
		capacity = 16
	)
	ds, err := dataset.Generate(dataset.SyntheticSpec(n, 256, k, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: d, Epochs: 3, LearningRate: 1, Nonlinear: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, capacity)
	if err != nil {
		t.Fatal(err)
	}
	policy := pipeline.DefaultRecoveryPolicy()
	fill := benchFill(ds.X, capacity)

	measure := func(backendName string, invoke func() (time.Duration, error)) binhdBenchRow {
		sim, err := invoke()
		if err != nil {
			t.Fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := invoke(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return binhdBenchRow{
			Backend:         backendName,
			WallNsPerInvoke: res.NsPerOp(),
			WallNsPerSample: res.NsPerOp() / capacity,
			SimUsPerSample:  float64(sim) / float64(time.Microsecond) / capacity,
			AllocsPerInvoke: res.AllocsPerOp(),
		}
	}

	int8Runner, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	int8Row := measure("int8", func() (time.Duration, error) {
		tm, err := int8Runner.InvokeBatch(capacity, fill)
		return tm.Total(), err
	})

	bin, err := binhd.New(p.Host, model.Binarize(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	binRunner, err := pipeline.WrapBackends(bin, nil, policy)
	if err != nil {
		t.Fatal(err)
	}
	binRow := measure("bin", func() (time.Duration, error) {
		tm, err := binRunner.InvokeBatch(capacity, fill)
		return tm.Total(), err
	})

	return binhdBench{
		Note:        "int8 graph vs bit-packed binary HDC, full-batch invoke; regenerate with `make bench-binhd`",
		Features:    n,
		Dim:         d,
		Classes:     k,
		Capacity:    capacity,
		Rows:        []binhdBenchRow{int8Row, binRow},
		SpeedupWall: float64(int8Row.WallNsPerSample) / float64(binRow.WallNsPerSample),
	}
}

// TestWriteBinHDBench refreshes only the "binhd" section of the JSON file
// named by BENCH_BINHD_OUT, preserving every other section in place
// (skipped when unset). `make bench-binhd` drives it.
func TestWriteBinHDBench(t *testing.T) {
	out := os.Getenv("BENCH_BINHD_OUT")
	if out == "" {
		t.Skip("BENCH_BINHD_OUT not set; run via `make bench-binhd`")
	}
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(buf, &doc); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	section, err := json.Marshal(measureBinHDBench(t))
	if err != nil {
		t.Fatal(err)
	}
	doc["binhd"] = section
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestWriteServeBench renders the micro-batching benchmark to the JSON file
// named by BENCH_SERVE_OUT (skipped when unset). `make bench-serve` drives it.
func TestWriteServeBench(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("BENCH_SERVE_OUT not set; run via `make bench-serve`")
	}
	p, cm, ds := serveBatchModel(t, 16)
	r, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, pipeline.DefaultRecoveryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var rowsOut []serveBenchRow
	for _, rows := range []int{1, 2, 4, 8, 16} {
		fill := benchFill(ds.X, rows)
		sim, err := r.InvokeBatch(rows, fill)
		if err != nil {
			t.Fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.InvokeBatch(rows, fill); err != nil {
					b.Fatal(err)
				}
			}
		})
		rowsOut = append(rowsOut, serveBenchRow{
			Rows:            rows,
			WallNsPerInvoke: res.NsPerOp(),
			WallNsPerSample: res.NsPerOp() / int64(rows),
			SimUsPerSample:  float64(sim.Total()) / float64(time.Microsecond) / float64(rows),
			AllocsPerInvoke: res.AllocsPerOp(),
		})
	}
	doc := struct {
		Note     string           `json:"note"`
		Model    string           `json:"model"`
		Capacity int              `json:"batch_capacity"`
		Rows     []serveBenchRow  `json:"rows"`
		Fleet    serveFleetBench  `json:"fleet"`
		Tenants  serveTenantBench `json:"tenants"`
		BinHD    binhdBench       `json:"binhd"`
	}{
		Note:     "micro-batched invoke cost; regenerate with `make bench-serve`",
		Model:    cm.Model.Name,
		Capacity: cm.BatchCapacity(),
		Rows:     rowsOut,
		Fleet:    measureFleetBench(t, p, cm, ds),
		Tenants:  measureTenantBench(t, p, cm, ds),
		BinHD:    measureBinHDBench(t),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
