package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/backend/binhd"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/tensor"
)

// binServeModel is serveBatchModel keeping the float model, so tests can
// binarize it for bin-class workers.
func binServeModel(t testing.TB, batch int) (pipeline.Platform, *edgetpu.CompiledModel, *hdc.Model, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p, cm, model, ds
}

func TestParseFleetBin(t *testing.T) {
	f, err := ParseFleet("tpu=2,bin=2")
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "tpu=2,bin=2" || len(f) != 4 {
		t.Fatalf("ParseFleet(tpu=2,bin=2) = %v", f)
	}
	if _, err := ParseFleet("bin=2,bin=1"); err == nil {
		t.Fatal("duplicate bin class accepted")
	}
}

func TestBinFleetRequiresBipolar(t *testing.T) {
	cfg := Config{Fleet: FleetSpec{binhd.Name}}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("bin fleet without Bipolar accepted")
	}
	if !strings.Contains(err.Error(), "Bipolar") {
		t.Fatalf("error %v does not name the missing Bipolar model", err)
	}
	cfg.Bipolar = &hdc.BipolarModel{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("bin fleet with Bipolar rejected: %v", err)
	}
}

// TestServeMixedBinFleet: a TPU + bin fleet must answer every request from
// the engine that served it — int8-graph answers on the TPU worker,
// bit-packed bipolar answers on the bin worker — attribute completions per
// class, and leave batch-1 TPU timing bit-identical to a direct runner
// (the bin class must not perturb the existing pricing paths).
func TestServeMixedBinFleet(t *testing.T) {
	p, cm, model, ds := binServeModel(t, 1)
	bm := model.Binarize()
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	directTiming, err := direct.Invoke(rowFill(ds, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cm, Config{
		Fleet:         FleetSpec{tpu.Name, binhd.Name},
		Bipolar:       bm,
		Policy:        policy,
		PacePerInvoke: 200 * time.Microsecond, // keep both workers busy
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const k = 40
	n := ds.Features()
	var mu sync.Mutex
	byClass := map[string]int{}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			row := i % ds.Samples()
			var got int32
			res, err := s.Do(context.Background(), rowFill(ds, row), func(out *tensor.Tensor) {
				got = out.I32[0]
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			mu.Lock()
			byClass[res.Backend]++
			mu.Unlock()
			switch res.Backend {
			case binhd.Name:
				if want := bm.Predict(ds.X.F32[row*n : (row+1)*n]); int(got) != want {
					t.Errorf("request %d: bin served %d, bipolar reference %d", i, got, want)
				}
				if res.Timing.HostFallback <= 0 || res.Timing.Compute != 0 || res.Timing.TransferIn != 0 {
					t.Errorf("request %d: bin-served timing off: %+v", i, res.Timing)
				}
			case tpu.Name:
				if res.Timing != directTiming {
					t.Errorf("request %d: TPU timing %+v drifted from direct %+v", i, res.Timing, directTiming)
				}
			}
		}(i)
	}
	wg.Wait()
	if byClass[tpu.Name] == 0 || byClass[binhd.Name] == 0 {
		t.Fatalf("both classes must serve under pacing; split %v", byClass)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Completed != k || rep.Failed != 0 || rep.Health != Healthy {
		t.Fatalf("mixed bin fleet accounting off:\n%s", rep)
	}
	if len(rep.Backends) != 2 {
		t.Fatalf("want 2 backend groups, got %+v", rep.Backends)
	}
	bin, ok := rep.Backend(binhd.Name)
	if !ok || bin.Workers != 1 || bin.Requests != byClass[binhd.Name] ||
		bin.Invokes == 0 || bin.SimTime <= 0 {
		t.Fatalf("bin breakdown off: %+v (split %v)", bin, byClass)
	}
	// Bin workers serve on their primary engine; nothing is a fallback.
	if rep.HostFallback != 0 || bin.Reliability.FallbackInvokes != 0 {
		t.Fatalf("bin serves miscounted as degraded-mode fallback:\n%s", rep)
	}
}

// TestServeBinBatched: bin workers must coalesce queued requests into
// row-prefix batched invokes and still answer each row with the reference
// bipolar prediction.
func TestServeBinBatched(t *testing.T) {
	p, cm, model, ds := binServeModel(t, 4)
	bm := model.Binarize()
	s, err := New(p, cm, Config{
		Fleet:       FleetSpec{binhd.Name},
		Bipolar:     bm,
		MaxBatch:    4,
		BatchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const k = 24
	n := ds.Features()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			row := i % ds.Samples()
			var got int32
			_, err := s.Do(context.Background(), rowFill(ds, row), func(out *tensor.Tensor) {
				got = out.I32[0]
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if want := bm.Predict(ds.X.F32[row*n : (row+1)*n]); int(got) != want {
				t.Errorf("request %d: batched bin served %d, reference %d", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Completed != k || rep.Failed != 0 {
		t.Fatalf("batched bin fleet accounting off:\n%s", rep)
	}
	if rep.BatchInvokes == 0 || rep.BatchRows != k || rep.MaxBatchRows < 2 {
		t.Fatalf("bin fleet never coalesced (invokes %d, rows %d, max %d)",
			rep.BatchInvokes, rep.BatchRows, rep.MaxBatchRows)
	}
}

// TestServeBinOnlyFleetNeedsNoAccel: a pure-bin fleet must serve on a
// platform without an accelerator.
func TestServeBinOnlyFleetNeedsNoAccel(t *testing.T) {
	_, cm, model, ds := binServeModel(t, 1)
	bm := model.Binarize()
	p := pipeline.CPUBaseline()
	s, err := New(p, cm, Config{Fleet: FleetSpec{binhd.Name}, Bipolar: bm})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := ds.Features()
	for i := 0; i < 8; i++ {
		var got int32
		res, err := s.Do(context.Background(), rowFill(ds, i), func(out *tensor.Tensor) {
			got = out.I32[0]
		})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Backend != binhd.Name || res.OnHost {
			t.Fatalf("request %d placement off: %+v", i, res)
		}
		if want := bm.Predict(ds.X.F32[i*n : (i+1)*n]); int(got) != want {
			t.Fatalf("request %d: served %d, reference %d", i, got, want)
		}
	}
	if rep := s.Report(); rep.Completed != 8 || rep.Health != Healthy {
		t.Fatalf("bin-only fleet report off:\n%s", rep)
	}
}
