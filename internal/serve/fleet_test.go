package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/backend/hostcpu"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/tensor"
)

func TestParseFleet(t *testing.T) {
	good := []struct {
		spec string
		want string // canonical String() rendering
		n    int
	}{
		{"tpu=2,cpu=2", "tpu=2,cpu=2", 4},
		{"cpu=3", "cpu=3", 3},
		{"tpu", "tpu=1", 1},
		{" tpu = 1 , cpu = 1 ", "tpu=1,cpu=1", 2},
		{"cpu,tpu", "cpu=1,tpu=1", 2},
	}
	for _, tc := range good {
		f, err := ParseFleet(tc.spec)
		if err != nil {
			t.Fatalf("ParseFleet(%q): %v", tc.spec, err)
		}
		if len(f) != tc.n || f.String() != tc.want {
			t.Fatalf("ParseFleet(%q) = %v (%q), want %d workers %q", tc.spec, f, f, tc.n, tc.want)
		}
	}
	bad := []struct {
		name, spec string
		reason     string // substring the typed error must carry
	}{
		{"empty spec", "", "empty spec"},
		{"blank spec", "   ", "empty spec"},
		{"unknown class", "gpu=2", "unknown backend class"},
		{"negative count", "tpu=-1", "at least 1"},
		{"non-integer count", "tpu=x", "not an integer"},
		{"zero count", "tpu=0", "at least 1"},
		{"zero count mixed", "tpu=0,cpu=4", "at least 1"},
		{"lone comma", ",", "empty segment"},
		{"empty middle segment", "tpu=2,,cpu=1", "empty segment"},
		{"trailing comma", "tpu=2,", "empty segment"},
		{"duplicate class", "tpu=2,tpu=1", "duplicate backend class"},
		{"duplicate bare class", "cpu,tpu,cpu", "duplicate backend class"},
	}
	for _, tc := range bad {
		f, err := ParseFleet(tc.spec)
		if err == nil {
			t.Fatalf("%s: ParseFleet(%q) accepted: %v", tc.name, tc.spec, f)
		}
		var fe *FleetError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %v (%T) is not a *FleetError", tc.name, err, err)
		}
		if fe.Spec != tc.spec {
			t.Fatalf("%s: FleetError.Spec = %q, want %q", tc.name, fe.Spec, tc.spec)
		}
		if !strings.Contains(fe.Reason, tc.reason) {
			t.Fatalf("%s: FleetError reason %q does not mention %q", tc.name, fe.Reason, tc.reason)
		}
	}
}

func TestFleetConfigValidate(t *testing.T) {
	bad := []Config{
		{Fleet: FleetSpec{"tpu", "gpu"}},
		{Devices: 3, Fleet: FleetSpec{"tpu", "cpu"}},
		{Fleet: FleetSpec{"tpu", "cpu", "cpu"}, Plans: []edgetpu.FaultPlan{{}, {}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid fleet config accepted: %+v", i, cfg)
		}
	}
	ok := Config{Devices: 2, Fleet: FleetSpec{"tpu", "cpu"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("consistent Devices+Fleet rejected: %v", err)
	}
}

func TestServeHeterogeneousFleet(t *testing.T) {
	// A 1-TPU + 1-CPU fleet must answer every request with the same
	// prediction as a direct runner — the quantized graph is engine-exact —
	// and attribute each completion to its worker's backend class.
	p, cm, ds := serveModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cm, Config{
		Fleet:         FleetSpec{tpu.Name, hostcpu.Name},
		Policy:        policy,
		PacePerInvoke: 200 * time.Microsecond, // keep both workers busy
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const k = 40
	want := make([]int32, k)
	for i := 0; i < k; i++ {
		if _, err := direct.Invoke(rowFill(ds, i%ds.Samples())); err != nil {
			t.Fatal(err)
		}
		want[i] = direct.Output(0).I32[0]
	}

	var mu sync.Mutex
	got := make([]int32, k)
	byClass := map[string]int{}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Do(context.Background(), rowFill(ds, i%ds.Samples()), func(out *tensor.Tensor) {
				mu.Lock()
				got[i] = out.I32[0]
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			mu.Lock()
			byClass[res.Backend]++
			mu.Unlock()
			if res.Backend == hostcpu.Name {
				if res.Timing.HostFallback <= 0 {
					t.Errorf("request %d: CPU-served result has no HostFallback time: %+v", i, res.Timing)
				}
				if res.Timing.Compute != 0 || res.Timing.TransferIn != 0 {
					t.Errorf("request %d: CPU-served result shows device phases: %+v", i, res.Timing)
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: fleet prediction %d != direct %d", i, got[i], want[i])
		}
	}
	if byClass[tpu.Name] == 0 || byClass[hostcpu.Name] == 0 {
		t.Fatalf("both classes must serve under pacing; split %v", byClass)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	rep := s.Report()
	if rep.Completed != k || rep.Failed != 0 {
		t.Fatalf("fleet accounting off:\n%s", rep)
	}
	if rep.Health != Healthy {
		t.Fatalf("healthy mixed fleet reports %s", rep.Health)
	}
	// HostFallback counts degraded-mode serves, not CPU-class workers.
	if rep.HostFallback != 0 {
		t.Fatalf("CPU-class serves miscounted as fallback:\n%s", rep)
	}
	if len(rep.Backends) != 2 {
		t.Fatalf("want 2 backend groups, got %+v", rep.Backends)
	}
	total := 0
	for _, b := range rep.Backends {
		if b.Workers != 1 || b.BreakersClosed != 1 {
			t.Fatalf("backend %s worker/breaker accounting off: %+v", b.Name, b)
		}
		if b.Requests != byClass[b.Name] || b.Latency.Count() != b.Requests {
			t.Fatalf("backend %s request accounting off: %+v vs split %v", b.Name, b, byClass)
		}
		if b.Invokes == 0 || b.SimTime <= 0 || b.Busy <= 0 {
			t.Fatalf("backend %s work accounting off: %+v", b.Name, b)
		}
		total += b.Requests
	}
	if total != rep.Completed {
		t.Fatalf("backend requests %d != completed %d", total, rep.Completed)
	}
	// The CPU worker's interpreter is its *primary* engine: its invokes are
	// primary invokes, never degraded-mode fallbacks.
	cpu, ok := rep.Backend(hostcpu.Name)
	if !ok || cpu.Reliability.Invokes == 0 ||
		cpu.Reliability.DeviceInvokes != cpu.Reliability.Invokes ||
		cpu.Reliability.FallbackInvokes != 0 {
		t.Fatalf("CPU class reliability misattributed: %+v", cpu.Reliability)
	}
}

func TestServeCPUOnlyFleetNeedsNoAccel(t *testing.T) {
	// A pure-CPU fleet must serve on a platform with no accelerator at all.
	_, cm, ds := serveModel(t)
	p := pipeline.CPUBaseline()
	if p.HasAccel() {
		t.Fatal("CPUBaseline grew an accelerator")
	}
	s, err := New(p, cm, Config{Fleet: FleetSpec{hostcpu.Name, hostcpu.Name}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		res, err := s.Do(context.Background(), rowFill(ds, i), nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Backend != hostcpu.Name || res.OnHost {
			t.Fatalf("request %d placement off: %+v", i, res)
		}
	}
	if rep := s.Report(); rep.Completed != 8 || rep.Health != Healthy {
		t.Fatalf("CPU-only fleet report off:\n%s", rep)
	}
}

func TestServeHeterogeneousOverloadAndDrain(t *testing.T) {
	// The overload/drain matrix on a 2-TPU + 2-CPU fleet: a bounded queue
	// under a burst beyond capacity must shed (never fail), honor deadlines,
	// and drain cleanly with every request settled.
	p, cm, ds := serveModel(t)
	s, err := New(p, cm, Config{
		Fleet:           FleetSpec{tpu.Name, tpu.Name, hostcpu.Name, hostcpu.Name},
		QueueCapacity:   4,
		DefaultDeadline: 250 * time.Millisecond,
		DrainDeadline:   2 * time.Second,
		Policy:          fastPolicy(),
		PacePerInvoke:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const burst = 64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Do(context.Background(), rowFill(ds, i%ds.Samples()), nil)
			var shed *ShedError
			if err != nil && !errors.As(err, &shed) && !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}
	rep := s.Report()
	if rep.Submitted != burst || rep.Settled() != burst {
		t.Fatalf("settlement off (%d submitted, %d settled):\n%s", rep.Submitted, rep.Settled(), rep)
	}
	if rep.Failed != 0 || rep.DrainForced != 0 {
		t.Fatalf("burst produced hard failures:\n%s", rep)
	}
	if rep.ShedQueueFull == 0 {
		t.Fatalf("a %d-burst over a 4-deep queue on 4 paced workers must shed:\n%s", burst, rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("nothing completed:\n%s", rep)
	}
}
