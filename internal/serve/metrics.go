package serve

import "hdcedge/internal/metrics"

// This file binds the server to its live metrics registry. Every counter,
// gauge and histogram the server maintains lives in the registry as a named
// metric; the handles below are pre-resolved at construction so the hot
// path records through atomic objects without ever touching the registry
// maps. ServeReport's counters are materialized from the same handles —
// there is exactly one set of books.

// instrumentable is the optional seam a backend implements to stream its
// own per-invoke telemetry into the server's registry.
type instrumentable interface {
	Instrument(reg *metrics.Registry, labels string)
}

// serveMetrics holds the server's pre-resolved registry handles.
type serveMetrics struct {
	reg *metrics.Registry

	submitted        *metrics.Counter
	admitted         *metrics.Counter
	completed        *metrics.Counter
	shedQueueFull    *metrics.Counter
	shedDraining     *metrics.Counter
	shedTenantQuota  *metrics.Counter
	deadlineExceeded *metrics.Counter
	cancelled        *metrics.Counter
	drainForced      *metrics.Counter
	failed           *metrics.Counter
	hostFallback     *metrics.Counter
	batchInvokes     *metrics.Counter
	batchRows        *metrics.Counter

	queueDepth    *metrics.Gauge
	queueDepthMax *metrics.Gauge
	batchRowsMax  *metrics.Gauge

	latency   *metrics.LiveHistogram
	queueWait *metrics.LiveHistogram
	perSample *metrics.LiveHistogram
}

// newServeMetrics resolves the server's metric handles in reg.
func newServeMetrics(reg *metrics.Registry) *serveMetrics {
	return &serveMetrics{
		reg:              reg,
		submitted:        reg.Counter("hdc_serve_submitted_total"),
		admitted:         reg.Counter("hdc_serve_admitted_total"),
		completed:        reg.Counter("hdc_serve_completed_total"),
		shedQueueFull:    reg.Counter(`hdc_serve_shed_total{cause="queue_full"}`),
		shedDraining:     reg.Counter(`hdc_serve_shed_total{cause="draining"}`),
		shedTenantQuota:  reg.Counter(`hdc_serve_shed_total{cause="tenant_quota"}`),
		deadlineExceeded: reg.Counter("hdc_serve_deadline_exceeded_total"),
		cancelled:        reg.Counter("hdc_serve_cancelled_total"),
		drainForced:      reg.Counter("hdc_serve_drain_forced_total"),
		failed:           reg.Counter("hdc_serve_failed_total"),
		hostFallback:     reg.Counter("hdc_serve_host_fallback_total"),
		batchInvokes:     reg.Counter("hdc_serve_batch_invokes_total"),
		batchRows:        reg.Counter("hdc_serve_batch_rows_total"),
		queueDepth:       reg.Gauge("hdc_serve_queue_depth"),
		queueDepthMax:    reg.Gauge("hdc_serve_queue_depth_max"),
		batchRowsMax:     reg.Gauge("hdc_serve_batch_rows_max"),
		latency:          reg.Histogram("hdc_serve_latency_seconds"),
		queueWait:        reg.Histogram("hdc_serve_queue_wait_seconds"),
		perSample:        reg.Histogram("hdc_serve_per_sample_sim_seconds"),
	}
}

// counters materializes the legacy report struct from the live handles.
// At quiescence the values are exact; mid-serve they may trail in-flight
// updates by a few atomic writes, like any registry snapshot.
func (m *serveMetrics) counters() counters {
	return counters{
		Submitted:        int(m.submitted.Value()),
		Admitted:         int(m.admitted.Value()),
		Completed:        int(m.completed.Value()),
		ShedQueueFull:    int(m.shedQueueFull.Value()),
		ShedDraining:     int(m.shedDraining.Value()),
		ShedTenantQuota:  int(m.shedTenantQuota.Value()),
		DeadlineExceeded: int(m.deadlineExceeded.Value()),
		Cancelled:        int(m.cancelled.Value()),
		DrainForced:      int(m.drainForced.Value()),
		Failed:           int(m.failed.Value()),
		HostFallback:     int(m.hostFallback.Value()),
		MaxQueueDepth:    int(m.queueDepthMax.Value()),
		BatchInvokes:     int(m.batchInvokes.Value()),
		BatchRows:        int(m.batchRows.Value()),
		MaxBatchRows:     int(m.batchRowsMax.Value()),
		Latency:          m.latency.Snapshot(),
		QueueWait:        m.queueWait.Snapshot(),
		PerSample:        m.perSample.Snapshot(),
	}
}
