package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdcedge/internal/metrics"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// ErrNoNodes is returned when a request finds no routable node at all
// (every node excluded and nothing to fail over to).
var ErrNoNodes = errors.New("router: no routable nodes")

// HedgeConfig controls hedged requests: after a delay with no primary
// response, the router re-issues the request to a second node and takes
// the first success, cancelling the loser through its context.
type HedgeConfig struct {
	// Enabled turns hedging on. Off, the router fails over synchronously
	// only after a node errors — and a single-node router is then a pure
	// pass-through, preserving bit-identical timing.
	Enabled bool

	// Delay is the fixed hedge delay. Zero means adaptive: the router
	// tracks its own end-to-end latency and hedges at the live p99, so
	// only the slowest ~1% of requests pay the duplicate work.
	Delay time.Duration

	// MinDelay floors the adaptive delay (and is the whole delay before
	// enough latency samples exist). Zero defaults to 1ms.
	MinDelay time.Duration
}

func (h HedgeConfig) minDelay() time.Duration {
	if h.MinDelay > 0 {
		return h.MinDelay
	}
	return time.Millisecond
}

// Config parameterizes the routing tier.
type Config struct {
	// ProbeInterval is the background health-probe period. Zero disables
	// the background prober; CheckNow still probes on demand.
	ProbeInterval time.Duration

	// ProbeTimeout bounds one probe request. Zero defaults to 50ms.
	ProbeTimeout time.Duration

	// ProbeFailThreshold is how many consecutive probe failures mark a
	// node down. Zero defaults to 3.
	ProbeFailThreshold int

	// ProbeRecoverThreshold is how many consecutive clean probes bring a
	// degraded or down node back up. Zero defaults to 2.
	ProbeRecoverThreshold int

	// DegradedLatency marks a node degraded when a successful probe takes
	// longer than this. Zero disables the latency criterion (the node's
	// own health signal still applies).
	DegradedLatency time.Duration

	// DegradedPenalty multiplies a degraded node's load in the
	// least-loaded pick, de-weighting it without excluding it. Zero
	// defaults to 4; 1 disables de-weighting.
	DegradedPenalty float64

	// ProbeFill populates the probe request's input tensor. Required when
	// probing is used (the probe is a real request through the node).
	ProbeFill func(in *tensor.Tensor)

	// EvictOnDown, when set, drains a node in the background the moment it
	// transitions down, releasing its queued and in-flight work. Eviction
	// is permanent: a drained server refuses re-admission.
	EvictOnDown bool

	// EvictDrainTimeout bounds an eviction drain. Zero defaults to 1s.
	EvictDrainTimeout time.Duration

	// Hedge configures hedged requests.
	Hedge HedgeConfig

	// OnStateChange, when non-nil, receives every typed state-transition
	// event synchronously (under the node's health lock — keep it cheap).
	OnStateChange func(StateEvent)

	// Metrics, when non-nil, is the registry the router streams its
	// telemetry into; nil gives the router a private registry.
	Metrics *metrics.Registry
}

// Validate checks the configuration for sanity.
func (c Config) Validate() error {
	if c.ProbeInterval < 0 || c.ProbeTimeout < 0 || c.DegradedLatency < 0 ||
		c.Hedge.Delay < 0 || c.Hedge.MinDelay < 0 || c.EvictDrainTimeout < 0 {
		return errors.New("router: negative duration in config")
	}
	if c.ProbeFailThreshold < 0 || c.ProbeRecoverThreshold < 0 {
		return errors.New("router: negative probe threshold")
	}
	if c.DegradedPenalty < 0 || (c.DegradedPenalty > 0 && c.DegradedPenalty < 1) {
		return fmt.Errorf("router: DegradedPenalty %g must be >= 1 (or 0 for the default)", c.DegradedPenalty)
	}
	if c.ProbeInterval > 0 && c.ProbeFill == nil {
		return errors.New("router: background probing needs ProbeFill")
	}
	return nil
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return 50 * time.Millisecond
}

func (c Config) probeFailThreshold() int {
	if c.ProbeFailThreshold > 0 {
		return c.ProbeFailThreshold
	}
	return 3
}

func (c Config) probeRecoverThreshold() int {
	if c.ProbeRecoverThreshold > 0 {
		return c.ProbeRecoverThreshold
	}
	return 2
}

func (c Config) degradedPenalty() float64 {
	if c.DegradedPenalty >= 1 {
		return c.DegradedPenalty
	}
	return 4
}

func (c Config) evictDrainTimeout() time.Duration {
	if c.EvictDrainTimeout > 0 {
		return c.EvictDrainTimeout
	}
	return time.Second
}

// Router fronts a fleet of serve.Nodes: it health-probes them, routes each
// request to the least-loaded routable node, fails over on node errors,
// and optionally hedges slow requests to a second node. Router itself
// implements serve.Node, so routing tiers compose.
type Router struct {
	cfg   Config
	nodes []*nodeSlot
	met   *routerMetrics

	evMu   sync.Mutex
	evSeq  int
	events []StateEvent

	stop     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
}

// New builds a router over the given nodes and starts the background
// prober when ProbeInterval is set.
func New(nodes []serve.Node, cfg Config) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("router: no nodes")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Router{cfg: cfg, met: newRouterMetrics(reg, len(nodes)), stop: make(chan struct{})}
	for i, n := range nodes {
		r.nodes = append(r.nodes, &nodeSlot{node: n, id: i})
		r.met.nodeState[i].Set(int64(NodeUp))
	}
	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.proberLoop()
	}
	return r, nil
}

// Metrics returns the router's live registry.
func (r *Router) Metrics() *metrics.Registry { return r.met.reg }

// Health aggregates the fleet verdicts into a serve.Health: all nodes up
// is healthy, no routable node is critical, anything in between is
// degraded.
func (r *Router) Health() serve.Health {
	up, routable := 0, 0
	for _, n := range r.nodes {
		switch n.getState() {
		case NodeUp:
			up++
			routable++
		case NodeDegraded:
			routable++
		}
	}
	switch {
	case up == len(r.nodes):
		return serve.Healthy
	case routable == 0:
		return serve.Critical
	}
	return serve.Degraded
}

// pick returns the least-loaded routable node not yet tried: down nodes
// are excluded, degraded ones participate with their load multiplied by
// the penalty. Ties break to the lowest index, keeping placement
// deterministic under equal load. When every untried node is down, pick
// falls back to the least-loaded untried node regardless of state —
// failing over to a probably-dead node beats refusing outright, and its
// error then settles the request honestly.
func (r *Router) pick(tried []bool) *nodeSlot {
	penalty := r.cfg.degradedPenalty()
	var best, fallback *nodeSlot
	var bestLoad, fbLoad float64
	for _, n := range r.nodes {
		if tried[n.id] {
			continue
		}
		l := n.load(penalty)
		if fallback == nil || l < fbLoad {
			fallback, fbLoad = n, l
		}
		if n.getState() == NodeDown {
			continue
		}
		if best == nil || l < bestLoad {
			best, bestLoad = n, l
		}
	}
	if best != nil {
		return best
	}
	return fallback
}

// Do submits one request through the routing tier and blocks until it
// settles — the legacy tenant-less entry point.
func (r *Router) Do(ctx context.Context, fill func(in *tensor.Tensor), consume func(out *tensor.Tensor)) (serve.Result, error) {
	return r.Submit(ctx, serve.Request{Fill: fill, Consume: consume})
}

// Submit routes one annotated request and blocks until it settles. The
// tenant and model annotations travel with the request through failover and
// hedging — every attempt, on whichever node, runs under the same tenancy.
// Exactly one outcome counter is incremented per call, whatever combination
// of failover and hedge attempts served it — the router-level accounting
// never double-counts a request.
func (r *Router) Submit(ctx context.Context, req serve.Request) (serve.Result, error) {
	r.met.submitted.Inc()
	if r.draining.Load() {
		err := &serve.ShedError{Cause: serve.ShedDraining}
		r.met.shed.Inc()
		return serve.Result{}, err
	}
	start := time.Now()
	var res serve.Result
	var err error
	tried := make([]bool, len(r.nodes))
	if r.cfg.Hedge.Enabled && len(r.nodes) > 1 {
		res, err = r.routeHedged(ctx, req, tried)
	} else {
		res, err = r.routeSync(ctx, req, tried, false)
	}
	r.account(err, time.Since(start))
	return res, err
}

// account classifies one settled request into exactly one outcome bucket.
func (r *Router) account(err error, lat time.Duration) {
	var shed *serve.ShedError
	switch {
	case err == nil:
		r.met.completed.Inc()
		r.met.latency.Observe(lat)
	case errors.As(err, &shed):
		r.met.shed.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		r.met.deadlineExceeded.Inc()
	case errors.Is(err, context.Canceled):
		r.met.cancelled.Inc()
	default:
		r.met.failed.Inc()
	}
}

// routeSync is the non-hedged path: try the least-loaded node, and on a
// node error (with the caller's context still alive) fail over to the
// next-best untried node. failedBefore marks whether a prior attempt
// already failed, so the first pick here counts as a failover.
func (r *Router) routeSync(ctx context.Context, req serve.Request, tried []bool, failedBefore bool) (serve.Result, error) {
	var lastRes serve.Result
	var lastErr error
	for {
		n := r.pick(tried)
		if n == nil {
			if lastErr == nil {
				lastErr = ErrNoNodes
			}
			return lastRes, lastErr
		}
		if failedBefore {
			r.met.failovers.Inc()
		}
		tried[n.id] = true
		n.inflight.Add(1)
		res, err := n.node.Submit(ctx, req)
		n.inflight.Add(-1)
		if err == nil {
			return res, nil
		}
		lastRes, lastErr = res, err
		failedBefore = true
		if ctx.Err() != nil {
			// The caller is gone; another attempt could not settle usefully.
			return res, err
		}
	}
}

// hedgeAttempt is one node attempt's settled outcome.
type hedgeAttempt struct {
	hedge bool
	res   serve.Result
	err   error
}

// hedgeDelay is how long the primary attempt runs alone before a hedge
// fires: the configured fixed delay, or the router's live latency p99
// (floored at MinDelay) when adaptive.
func (r *Router) hedgeDelay() time.Duration {
	if r.cfg.Hedge.Delay > 0 {
		return r.cfg.Hedge.Delay
	}
	snap := r.met.latency.Snapshot()
	if snap.Count() == 0 {
		return r.cfg.Hedge.minDelay()
	}
	d := snap.Quantile(0.99)
	if floor := r.cfg.Hedge.minDelay(); d < floor {
		d = floor
	}
	return d
}

// routeHedged runs the hedged path: launch the primary attempt, and if it
// has not settled within the hedge delay, launch a duplicate on a second
// node. First success wins; the loser is cancelled through the shared
// context and reaped in the background, where a discarded success counts
// as wasted hedge work. consume runs exactly once however many attempts
// complete. If every launched attempt fails while the caller's context is
// alive, the remaining nodes are tried synchronously.
func (r *Router) routeHedged(ctx context.Context, req serve.Request, tried []bool) (serve.Result, error) {
	actx, acancel := context.WithCancel(ctx)
	defer acancel()

	var cmu sync.Mutex
	consumed := false
	consume := req.Consume
	gated := func(out *tensor.Tensor) {
		cmu.Lock()
		defer cmu.Unlock()
		if consumed {
			return
		}
		consumed = true
		if consume != nil {
			consume(out)
		}
	}
	greq := req
	greq.Consume = gated

	results := make(chan hedgeAttempt, 2) // buffered: a loser never blocks
	launch := func(n *nodeSlot, hedge bool) {
		tried[n.id] = true
		n.inflight.Add(1)
		go func() {
			res, err := n.node.Submit(actx, greq)
			n.inflight.Add(-1)
			results <- hedgeAttempt{hedge: hedge, res: res, err: err}
		}()
	}

	primary := r.pick(tried)
	if primary == nil {
		return serve.Result{}, ErrNoNodes
	}
	launch(primary, false)
	outstanding := 1

	timer := time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	hedged := false

	var last hedgeAttempt
	for {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			hn := r.pick(tried)
			if hn == nil {
				continue // nowhere to hedge; primary runs alone
			}
			r.met.hedgesFired.Inc()
			launch(hn, true)
			outstanding++
		case a := <-results:
			outstanding--
			if a.err == nil {
				acancel() // first success wins; cancel the loser
				if a.hedge {
					r.met.hedgesWon.Inc()
				}
				r.reap(outstanding, results)
				return a.res, nil
			}
			last = a
			if outstanding > 0 {
				continue // the other attempt may still succeed
			}
			if ctx.Err() != nil {
				return last.res, last.err
			}
			// Every launched attempt failed with the caller still waiting:
			// fall back to synchronous failover over the untried nodes.
			return r.routeSync(ctx, greq, tried, true)
		}
	}
}

// reap consumes the outcomes of attempts still in flight after a winner
// was chosen, off the request path; a loser that completed anyway is
// duplicate work, counted as a wasted hedge.
func (r *Router) reap(outstanding int, results chan hedgeAttempt) {
	if outstanding <= 0 {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for i := 0; i < outstanding; i++ {
			if a := <-results; a.err == nil {
				r.met.hedgesWasted.Inc()
			}
		}
	}()
}

// Drain stops the prober, refuses new submissions, drains every node in
// parallel, and waits for background reapers. It returns the first node
// drain error, if any.
func (r *Router) Drain(ctx context.Context) error {
	if !r.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(r.stop)
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *nodeSlot) {
			defer wg.Done()
			errs[i] = n.node.Drain(ctx)
		}(i, n)
	}
	wg.Wait()
	r.wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close drains with no deadline beyond each node's own.
func (r *Router) Close() error { return r.Drain(context.Background()) }

var _ serve.Node = (*Router)(nil)
