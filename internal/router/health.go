package router

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdcedge/internal/serve"
)

// NodeState is the router's verdict on one node, produced by folding the
// node's self-reported health (breaker-derived, from PR-5's metrics
// snapshots) together with active probe outcomes. The distinction from
// serve.Health matters: a gray-slow or crashed node self-reports healthy
// or is unreachable — only the probe path sees that.
type NodeState int32

const (
	// NodeUp: probes succeed promptly and the node self-reports healthy.
	NodeUp NodeState = iota
	// NodeDegraded: alive but impaired — probe latency above the degraded
	// threshold, or the node's own breakers report trouble. Routable, but
	// de-weighted.
	NodeDegraded
	// NodeDown: consecutive probe failures crossed the threshold. Excluded
	// from routing until probes recover.
	NodeDown
)

// String renders the state.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDegraded:
		return "degraded"
	case NodeDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// StateEvent is one typed node state transition, in observation order.
type StateEvent struct {
	Seq      int       // global transition sequence number (from 1)
	Node     int       // node index
	From, To NodeState // the transition
	Reason   string    // what the prober observed
	At       time.Time
}

// String renders the event.
func (e StateEvent) String() string {
	return fmt.Sprintf("#%d node %d %s→%s (%s)", e.Seq, e.Node, e.From, e.To, e.Reason)
}

// nodeSlot is the router's per-node bookkeeping: the node itself, its
// routed-load counter, and the health machine's state.
type nodeSlot struct {
	node serve.Node
	id   int

	inflight atomic.Int64 // requests routed here and not yet settled

	mu        sync.Mutex // guards the health fields below
	state     NodeState
	failures  int  // consecutive probe failures
	successes int  // consecutive probe successes since last failure
	probing   bool // an active probe is in flight; skip this tick
}

// load is the routing weight: live in-flight count, multiplied by the
// degraded penalty when the health machine has de-weighted the node.
func (n *nodeSlot) load(penalty float64) float64 {
	l := float64(n.inflight.Load())
	if NodeState(atomic.LoadInt32((*int32)(&n.state))) == NodeDegraded {
		return (l + 1) * penalty
	}
	return l
}

// getState reads the state without the mutex (it is only ever written
// under n.mu via setStateLocked's atomic store).
func (n *nodeSlot) getState() NodeState {
	return NodeState(atomic.LoadInt32((*int32)(&n.state)))
}

func (n *nodeSlot) setStateLocked(s NodeState) {
	atomic.StoreInt32((*int32)(&n.state), int32(s))
}

// probe issues one active probe against every node (in parallel, skipping
// nodes with a probe already in flight) and folds the outcomes into the
// state machines. Called by the background prober each tick and by
// CheckNow in tests and single-shot tools.
func (r *Router) probe() {
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		n.mu.Lock()
		if n.probing {
			n.mu.Unlock()
			continue
		}
		n.probing = true
		n.mu.Unlock()
		wg.Add(1)
		go func(n *nodeSlot) {
			defer wg.Done()
			r.probeOne(n)
		}(n)
	}
	wg.Wait()
}

// probeOne runs one probe request against n and applies the outcome.
func (r *Router) probeOne(n *nodeSlot) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.probeTimeout())
	start := time.Now()
	_, err := n.node.Do(ctx, r.cfg.ProbeFill, nil)
	lat := time.Since(start)
	cancel()
	r.applyProbe(n, err, lat)
}

// applyProbe advances n's health machine with one probe outcome. The
// transition decision and the event emission happen under n.mu, so each
// node has a single writer and events are totally ordered per node.
func (r *Router) applyProbe(n *nodeSlot, err error, lat time.Duration) {
	inner := n.node.Health()
	n.mu.Lock()
	defer func() {
		n.probing = false
		n.mu.Unlock()
	}()
	if err != nil {
		r.met.probeFailures.Inc()
		n.failures++
		n.successes = 0
		if n.failures >= r.cfg.probeFailThreshold() && n.state != NodeDown {
			r.transitionLocked(n, NodeDown, fmt.Sprintf("%d consecutive probe failures (last: %v)", n.failures, err))
		}
		return
	}
	r.met.probeSuccesses.Inc()
	n.failures = 0
	degraded := lat > r.cfg.DegradedLatency && r.cfg.DegradedLatency > 0
	if inner != serve.Healthy {
		degraded = true
	}
	if degraded {
		n.successes = 0
		if n.state != NodeDegraded {
			r.transitionLocked(n, NodeDegraded, fmt.Sprintf("probe %v, node health %s", lat.Round(time.Microsecond), inner))
		}
		return
	}
	n.successes++
	if n.state != NodeUp && n.successes >= r.cfg.probeRecoverThreshold() {
		r.transitionLocked(n, NodeUp, fmt.Sprintf("%d consecutive clean probes", n.successes))
	}
}

// transitionLocked records a state change: the typed event (ring +
// callback), the per-node state gauge, and the transition counter.
// Caller holds n.mu.
func (r *Router) transitionLocked(n *nodeSlot, to NodeState, reason string) {
	from := n.state
	n.setStateLocked(to)
	r.met.nodeState[n.id].Set(int64(to))
	r.met.transitions.Inc()
	ev := StateEvent{Node: n.id, From: from, To: to, Reason: reason, At: time.Now()}
	r.evMu.Lock()
	r.evSeq++
	ev.Seq = r.evSeq
	r.events = append(r.events, ev)
	// The callback runs under evMu so observers see transitions in exactly
	// Seq order even when nodes transition concurrently.
	if r.cfg.OnStateChange != nil {
		r.cfg.OnStateChange(ev)
	}
	r.evMu.Unlock()
	if to == NodeDown && r.cfg.EvictOnDown && !r.draining.Load() {
		// Evict: release the dead node's queued and in-flight work in the
		// background, bounded by the eviction timeout. Permanent — a
		// drained server refuses re-admission.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.evictDrainTimeout())
			defer cancel()
			_ = n.node.Drain(ctx)
		}()
	}
}

// CheckNow runs one synchronous probe round against every node and
// returns the resulting states. Tests and single-shot tools use it in
// place of the background prober.
func (r *Router) CheckNow() []NodeState {
	r.probe()
	return r.States()
}

// States returns each node's current state, indexed by node.
func (r *Router) States() []NodeState {
	out := make([]NodeState, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.getState()
	}
	return out
}

// Events returns a copy of the typed state-transition log, in sequence
// order.
func (r *Router) Events() []StateEvent {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	out := make([]StateEvent, len(r.events))
	copy(out, r.events)
	return out
}

// proberLoop is the background probe ticker, started when ProbeInterval
// is set; it stops when the router drains.
func (r *Router) proberLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probe()
		}
	}
}
