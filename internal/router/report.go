package router

import (
	"fmt"
	"strings"
	"time"

	"hdcedge/internal/serve"
)

// NodeReport is one node's view from the router: its health verdict, the
// routed-work split, and the node's own serving report when the node
// exposes one (chaos wrappers forward it).
type NodeReport struct {
	Node     int
	State    NodeState
	Inflight int // requests routed here and unsettled at snapshot time
}

// RouterReport is a point-in-time snapshot of the routing tier. The
// outcome counters partition Do calls: every submitted request settles as
// exactly one of completed, shed, deadline-exceeded, cancelled, or failed,
// no matter how many node attempts (failover or hedge) served it.
type RouterReport struct {
	Submitted        int
	Completed        int
	Shed             int
	DeadlineExceeded int
	Cancelled        int
	Failed           int

	Failovers    int
	HedgesFired  int
	HedgesWon    int
	HedgesWasted int

	ProbeSuccesses int
	ProbeFailures  int
	Transitions    int

	Nodes  []NodeReport
	Events []StateEvent

	P50, P99 time.Duration // router-observed end-to-end latency
}

// Settled is the number of requests with a recorded outcome; at
// quiescence it equals Submitted.
func (r RouterReport) Settled() int {
	return r.Completed + r.Shed + r.DeadlineExceeded + r.Cancelled + r.Failed
}

// String renders the report for logs.
func (r RouterReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router: %d submitted, %d completed, %d shed, %d deadline, %d cancelled, %d failed\n",
		r.Submitted, r.Completed, r.Shed, r.DeadlineExceeded, r.Cancelled, r.Failed)
	fmt.Fprintf(&b, "router: %d failovers, hedges %d fired / %d won / %d wasted, probes %d ok / %d failed, %d transitions\n",
		r.Failovers, r.HedgesFired, r.HedgesWon, r.HedgesWasted, r.ProbeSuccesses, r.ProbeFailures, r.Transitions)
	fmt.Fprintf(&b, "router: latency p50 %v p99 %v\n", r.P50, r.P99)
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "router: node %d %s, %d in flight\n", n.Node, n.State, n.Inflight)
	}
	return b.String()
}

// Report snapshots the router's counters, node states, and event log.
func (r *Router) Report() RouterReport {
	snap := r.met.latency.Snapshot()
	rep := RouterReport{
		Submitted:        int(r.met.submitted.Value()),
		Completed:        int(r.met.completed.Value()),
		Shed:             int(r.met.shed.Value()),
		DeadlineExceeded: int(r.met.deadlineExceeded.Value()),
		Cancelled:        int(r.met.cancelled.Value()),
		Failed:           int(r.met.failed.Value()),
		Failovers:        int(r.met.failovers.Value()),
		HedgesFired:      int(r.met.hedgesFired.Value()),
		HedgesWon:        int(r.met.hedgesWon.Value()),
		HedgesWasted:     int(r.met.hedgesWasted.Value()),
		ProbeSuccesses:   int(r.met.probeSuccesses.Value()),
		ProbeFailures:    int(r.met.probeFailures.Value()),
		Transitions:      int(r.met.transitions.Value()),
		Events:           r.Events(),
		P50:              snap.Quantile(0.5),
		P99:              snap.Quantile(0.99),
	}
	for i, n := range r.nodes {
		rep.Nodes = append(rep.Nodes, NodeReport{
			Node:     i,
			State:    n.getState(),
			Inflight: int(n.inflight.Load()),
		})
	}
	return rep
}

// NodeServeReport returns node i's own ServeReport when the node is a
// *serve.Server (directly or behind a chaos wrapper), for experiments
// that audit per-node work.
func (r *Router) NodeServeReport(i int) (serve.ServeReport, bool) {
	n := r.nodes[i].node
	if c, ok := n.(*ChaosNode); ok {
		n = c.inner
	}
	if s, ok := n.(*serve.Server); ok {
		return s.Report(), true
	}
	return serve.ServeReport{}, false
}
