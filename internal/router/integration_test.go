package router

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// routerModel trains the same tiny classifier the serve tests use, for
// integration tests over real servers.
func routerModel(t *testing.T) (pipeline.Platform, *edgetpu.CompiledModel, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p, cm, ds
}

func rowFill(ds *dataset.Dataset, i int) func(in *tensor.Tensor) {
	n := ds.Features()
	row := i % ds.Samples()
	return func(in *tensor.Tensor) {
		copy(in.F32, ds.X.F32[row*n:(row+1)*n])
	}
}

func TestRouterSingleNodeBitIdentical(t *testing.T) {
	// A one-node router with hedging off is a pure pass-through: per-invoke
	// simulated timing and predictions must match a directly-driven
	// ResilientRunner bit for bit — the routing tier adds no behavior to
	// the batch-1 path.
	p, cm, ds := routerModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(p, cm, serve.Config{Devices: 1, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New([]serve.Node{s}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const k = 16
	for i := 0; i < k; i++ {
		fill := rowFill(ds, i)
		dt, err := direct.Invoke(fill)
		if err != nil {
			t.Fatal(err)
		}
		want := direct.Output(0).I32[0]
		var got int32
		res, err := r.Do(context.Background(), fill, func(out *tensor.Tensor) {
			got = out.I32[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Timing != dt {
			t.Fatalf("row %d: routed timing %+v != direct %+v", i, res.Timing, dt)
		}
		if got != want {
			t.Fatalf("row %d: routed prediction %d != direct %d", i, got, want)
		}
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != k || rep.Failovers != 0 || rep.HedgesFired != 0 {
		t.Fatalf("pass-through run report off:\n%s", rep)
	}
	srep, ok := r.NodeServeReport(0)
	if !ok || srep.Completed != k {
		t.Fatalf("node report off: %v %v", ok, srep)
	}
}

func TestRouterFleetFailoverServesThroughCrash(t *testing.T) {
	// Two real nodes, one crashed from the start: every request must land
	// on the survivor with correct predictions, the crash visible only as
	// failovers.
	p, cm, ds := routerModel(t)
	policy := pipeline.DefaultRecoveryPolicy()
	mkNode := func() *serve.Server {
		s, err := serve.New(p, cm, serve.Config{Devices: 1, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	dead, err := NewChaosNode(mkNode(), 0, ChaosPlan{Mode: ChaosCrash})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New([]serve.Node{dead, mkNode()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	for i := 0; i < k; i++ {
		fill := rowFill(ds, i)
		if _, err := direct.Invoke(fill); err != nil {
			t.Fatal(err)
		}
		want := direct.Output(0).I32[0]
		var got int32
		if _, err := r.Do(context.Background(), fill, func(out *tensor.Tensor) { got = out.I32[0] }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("row %d: prediction %d != direct %d through failover", i, got, want)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != k || rep.Failed != 0 || rep.Failovers != k {
		t.Fatalf("crash-failover accounting off:\n%s", rep)
	}
}

func TestRouterDrainRacesChaosHang(t *testing.T) {
	// Satellite: graceful drain racing a node hang. A chaos-hung node
	// strands requests that will never settle on their own; Drain must
	// force-settle them with a typed DrainError and return within the
	// drain bound — a hung worker cannot wedge shutdown.
	p, cm, _ := routerModel(t)
	s, err := serve.New(p, cm, serve.Config{
		Devices:       1,
		Policy:        pipeline.DefaultRecoveryPolicy(),
		DrainDeadline: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hung, err := NewChaosNode(s, 0, ChaosPlan{Mode: ChaosHang})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New([]serve.Node{hung}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	const stuck = 6
	var wg sync.WaitGroup
	errs := make(chan error, stuck)
	for i := 0; i < stuck; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.Do(context.Background(), nil, nil)
			errs <- err
		}()
	}
	// Wait until every request is stranded in the hang.
	deadline := time.Now().Add(2 * time.Second)
	for {
		hung.mu.Lock()
		n := len(hung.hung)
		hung.mu.Unlock()
		if n == stuck {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests reached the hang", n, stuck)
		}
		time.Sleep(200 * time.Microsecond)
	}

	start := time.Now()
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("drain with hung node: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("drain took %v against a hung node (bound 200ms + slack)", elapsed)
	}
	wg.Wait()
	for i := 0; i < stuck; i++ {
		var de *serve.DrainError
		if err := <-errs; !errors.As(err, &de) {
			t.Fatalf("stranded request %d settled with %v, want typed DrainError", i, err)
		}
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != 0 || rep.Failed != stuck {
		t.Fatalf("hung requests misaccounted:\n%s", rep)
	}
}
