// Package router fronts a fleet of in-process serving nodes with health
// probing, least-loaded routing, failover, and hedged requests. It treats
// each node as an opaque serve.Node, which is also the seam where chaos is
// injected: a ChaosNode interposes node-grade failures (crash, hang,
// gray-slow) at the server boundary without the server's cooperation, the
// same way edgetpu.FaultPlan injects device-grade faults below the runner.
package router

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"hdcedge/internal/metrics"
	"hdcedge/internal/rng"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// ChaosMode is the failure a ChaosNode inflicts on its wrapped node.
type ChaosMode int

const (
	// ChaosNone leaves the node untouched (pure pass-through).
	ChaosNone ChaosMode = iota
	// ChaosCrash makes the node refuse every request instantly with a
	// *CrashError — the process-died failure mode. Probes fail the same
	// way, so the router's health machine marks the node down.
	ChaosCrash
	// ChaosHang admits requests and never settles them: Do blocks until
	// the caller's context dies or the node is drained. This is the
	// worst-case gray failure — the node looks alive at admission but
	// strands every caller that touches it.
	ChaosHang
	// ChaosSlow serves correctly but stretches wall-clock latency by
	// Factor (sleeping the extra time after the inner call returns) — the
	// classic gray-slow node that health checks based on liveness alone
	// never catch.
	ChaosSlow
)

// String renders the mode as its spec keyword.
func (m ChaosMode) String() string {
	switch m {
	case ChaosNone:
		return "none"
	case ChaosCrash:
		return "crash"
	case ChaosHang:
		return "hang"
	case ChaosSlow:
		return "slow"
	}
	return fmt.Sprintf("chaos(%d)", int(m))
}

// ChaosPlan configures one node's injected failure. Like edgetpu.FaultPlan
// it is seeded: with Rate < 1 the per-request fault coin comes from a
// deterministic stream, so a chaos scenario replays bit-identically under
// the same seed.
type ChaosPlan struct {
	Mode   ChaosMode
	Factor float64 // ChaosSlow: wall-clock latency multiplier (> 1)
	Rate   float64 // fraction of requests hit (0 or 1 = all); hang/slow only
	After  int     // requests served normally before the fault engages
	Seed   uint64  // drives the Rate coin stream
}

// Validate checks the plan for sanity.
func (p ChaosPlan) Validate() error {
	switch p.Mode {
	case ChaosNone, ChaosCrash, ChaosHang:
	case ChaosSlow:
		if math.IsNaN(p.Factor) || p.Factor <= 1 {
			return fmt.Errorf("router: slow factor %g must exceed 1", p.Factor)
		}
	default:
		return fmt.Errorf("router: unknown chaos mode %d", int(p.Mode))
	}
	if math.IsNaN(p.Rate) || p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("router: chaos rate %g outside [0, 1]", p.Rate)
	}
	if p.After < 0 {
		return fmt.Errorf("router: negative chaos After %d", p.After)
	}
	if p.Rate > 0 && p.Rate < 1 && p.Mode == ChaosCrash {
		return fmt.Errorf("router: crash is not rateable; a crashed node stays crashed")
	}
	return nil
}

// Enabled reports whether the plan injects anything.
func (p ChaosPlan) Enabled() bool { return p.Mode != ChaosNone }

// ChaosSpecError is a chaos-spec parse failure, pinned to the offending
// comma-separated segment so callers can report exactly what was rejected
// (a duplicate node index, a bad rate, an empty segment, ...).
type ChaosSpecError struct {
	Spec    string // the full spec being parsed
	Segment string // the offending segment, trimmed
	Reason  string
}

func (e *ChaosSpecError) Error() string {
	return fmt.Sprintf("router: chaos spec %q: segment %q: %s", e.Spec, e.Segment, e.Reason)
}

// ParseChaos builds per-node plans from a comma-separated spec such as
// "0:crash,2:slow=8,3:hang@0.5". Each segment is NODE:MODE with an
// optional =FACTOR (slow only) and an optional @RATE suffix making the
// fault intermittent. seed feeds each plan's coin stream, offset by node
// index so nodes fault independently. The empty string yields no plans;
// any malformed segment — including an empty one left by a stray comma —
// rejects the whole spec with a *ChaosSpecError.
func ParseChaos(spec string, seed uint64) (map[int]ChaosPlan, error) {
	plans := map[int]ChaosPlan{}
	if strings.TrimSpace(spec) == "" {
		return plans, nil
	}
	for _, field := range strings.Split(spec, ",") {
		seg := strings.TrimSpace(field)
		fail := func(reason string) error {
			return &ChaosSpecError{Spec: spec, Segment: seg, Reason: reason}
		}
		if seg == "" {
			return nil, fail("empty segment")
		}
		nodeStr, rest, found := strings.Cut(seg, ":")
		if !found {
			return nil, fail("lacks a NODE: prefix")
		}
		node, err := strconv.Atoi(strings.TrimSpace(nodeStr))
		if err != nil || node < 0 {
			return nil, fail(fmt.Sprintf("bad node index %q", strings.TrimSpace(nodeStr)))
		}
		if _, dup := plans[node]; dup {
			return nil, fail(fmt.Sprintf("duplicate plan for node %d", node))
		}
		p := ChaosPlan{Seed: seed + uint64(node)}
		if before, rateStr, hasRate := cutLast(rest, "@"); hasRate {
			rest = before
			if p.Rate, err = strconv.ParseFloat(strings.TrimSpace(rateStr), 64); err != nil {
				return nil, fail(fmt.Sprintf("bad rate %q", strings.TrimSpace(rateStr)))
			}
		}
		mode, factorStr, hasFactor := strings.Cut(rest, "=")
		switch strings.ToLower(strings.TrimSpace(mode)) {
		case "crash":
			p.Mode = ChaosCrash
		case "hang":
			p.Mode = ChaosHang
		case "slow":
			p.Mode = ChaosSlow
			p.Factor = 8
		default:
			return nil, fail(fmt.Sprintf("unknown mode %q (have crash, hang, slow)", strings.TrimSpace(mode)))
		}
		if hasFactor {
			if p.Factor, err = strconv.ParseFloat(strings.TrimSpace(factorStr), 64); err != nil {
				return nil, fail(fmt.Sprintf("bad factor %q", strings.TrimSpace(factorStr)))
			}
			if p.Mode != ChaosSlow {
				return nil, fail(fmt.Sprintf("=FACTOR only applies to slow, not %s", p.Mode))
			}
		}
		if err := p.Validate(); err != nil {
			return nil, fail(err.Error())
		}
		plans[node] = p
	}
	return plans, nil
}

// cutLast splits s on the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// CrashError is what a crashed node answers every request with.
type CrashError struct{ Node int }

func (e *CrashError) Error() string {
	return fmt.Sprintf("router: node %d crashed (chaos)", e.Node)
}

// ChaosNode wraps a serve.Node and inflicts its plan at the submit
// boundary. Health and Metrics pass through untouched — a gray-slow or
// hung node still self-reports healthy, which is exactly why the router
// needs active probes.
type ChaosNode struct {
	inner serve.Node
	plan  ChaosPlan
	id    int

	mu       sync.Mutex
	coin     *rng.RNG
	served   int  // requests seen, for the After threshold
	draining bool // set by Drain; hung requests are then refused
	hung     map[chan struct{}]struct{}
}

// NewChaosNode wraps inner with the plan. id labels crash errors and
// should be the node's router index.
func NewChaosNode(inner serve.Node, id int, plan ChaosPlan) (*ChaosNode, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &ChaosNode{
		inner: inner,
		plan:  plan,
		id:    id,
		coin:  rng.New(plan.Seed),
		hung:  map[chan struct{}]struct{}{},
	}, nil
}

// active decides, under the plan's request counter and seeded coin,
// whether this request is hit by the fault.
func (c *ChaosNode) active() bool {
	if !c.plan.Enabled() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.served++
	if c.served <= c.plan.After {
		return false
	}
	if c.plan.Mode == ChaosCrash {
		return true // crashes are not rateable; dead stays dead
	}
	if c.plan.Rate > 0 && c.plan.Rate < 1 {
		return c.coin.Float64() < c.plan.Rate
	}
	return true
}

// Do implements serve.Node with the plan's failure interposed.
func (c *ChaosNode) Do(ctx context.Context, fill func(in *tensor.Tensor), consume func(out *tensor.Tensor)) (serve.Result, error) {
	return c.Submit(ctx, serve.Request{Fill: fill, Consume: consume})
}

// Submit implements serve.Node with the plan's failure interposed; the
// request's tenancy annotations pass through to the wrapped node untouched.
func (c *ChaosNode) Submit(ctx context.Context, req serve.Request) (serve.Result, error) {
	if !c.active() {
		return c.inner.Submit(ctx, req)
	}
	switch c.plan.Mode {
	case ChaosCrash:
		return serve.Result{}, &CrashError{Node: c.id}
	case ChaosHang:
		// Admit and never settle. The request is released only by its own
		// context or by Drain force-settling it — never by the node.
		release := make(chan struct{})
		c.mu.Lock()
		if c.draining {
			c.mu.Unlock()
			return serve.Result{}, &serve.ShedError{Cause: serve.ShedDraining}
		}
		c.hung[release] = struct{}{}
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			c.mu.Lock()
			delete(c.hung, release)
			c.mu.Unlock()
			return serve.Result{}, ctx.Err()
		case <-release:
			return serve.Result{}, &serve.DrainError{Stage: "chaos-hung"}
		}
	case ChaosSlow:
		start := time.Now()
		res, err := c.inner.Submit(ctx, req)
		extra := time.Duration(float64(time.Since(start)) * (c.plan.Factor - 1))
		// The result is already delivered (consume ran inside the inner
		// call); the gray-slowness is purely wall-clock, stalling the
		// caller the way a thermally-throttled or contended node would.
		select {
		case <-time.After(extra):
		case <-ctx.Done():
		}
		res.Latency += extra
		return res, err
	}
	return c.inner.Submit(ctx, req)
}

// Health passes through: chaos failures are deliberately invisible to
// self-reported health.
func (c *ChaosNode) Health() serve.Health { return c.inner.Health() }

// Metrics passes through to the wrapped node's registry.
func (c *ChaosNode) Metrics() *metrics.Registry { return c.inner.Metrics() }

// Drain force-settles every hung request with a typed DrainError, then
// drains the wrapped node. This guarantees Drain returns within the inner
// node's drain bound even when the plan strands requests forever.
func (c *ChaosNode) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	for release := range c.hung {
		close(release)
	}
	c.hung = map[chan struct{}]struct{}{}
	c.mu.Unlock()
	return c.inner.Drain(ctx)
}

var _ serve.Node = (*ChaosNode)(nil)
