package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdcedge/internal/metrics"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// fakeNode is a scriptable serve.Node: each Do consults script with the
// 1-based call number and either errors, blocks for a delay (or until the
// context dies), or completes, feeding consume a tensor holding the
// node's id so tests can see who served.
type fakeNode struct {
	id     int
	script func(call int64) (delay time.Duration, err error)
	health serve.Health
	reg    *metrics.Registry

	calls   atomic.Int64
	served  atomic.Int64
	drained atomic.Bool
}

func newFakeNode(id int, script func(int64) (time.Duration, error)) *fakeNode {
	return &fakeNode{id: id, script: script, reg: metrics.NewRegistry()}
}

func (f *fakeNode) Do(ctx context.Context, fill func(in *tensor.Tensor), consume func(out *tensor.Tensor)) (serve.Result, error) {
	return f.Submit(ctx, serve.Request{Fill: fill, Consume: consume})
}

func (f *fakeNode) Submit(ctx context.Context, req serve.Request) (serve.Result, error) {
	call := f.calls.Add(1)
	if f.drained.Load() {
		return serve.Result{}, &serve.ShedError{Cause: serve.ShedDraining}
	}
	var delay time.Duration
	var err error
	if f.script != nil {
		delay, err = f.script(call)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return serve.Result{}, ctx.Err()
		}
	}
	if err != nil {
		return serve.Result{}, err
	}
	if req.Consume != nil {
		out := tensor.New(tensor.Int32, 1)
		out.I32[0] = int32(f.id)
		req.Consume(out)
	}
	f.served.Add(1)
	return serve.Result{Device: f.id, Backend: "fake", Tenant: req.Tenant, Model: req.Model}, nil
}

func (f *fakeNode) Health() serve.Health       { return f.health }
func (f *fakeNode) Metrics() *metrics.Registry { return f.reg }
func (f *fakeNode) Drain(ctx context.Context) error {
	f.drained.Store(true)
	return nil
}

func instant(int64) (time.Duration, error) { return 0, nil }

func checkInvariant(t *testing.T, rep RouterReport) {
	t.Helper()
	if rep.Settled() != rep.Submitted {
		t.Fatalf("outcome partition broken: %d submitted but %d settled\n%s",
			rep.Submitted, rep.Settled(), rep)
	}
}

func TestRouterTieBreaksToLowestIndex(t *testing.T) {
	// Idle, equally-loaded, healthy nodes: every sequential request lands
	// on node 0 — placement is deterministic, not round-robin.
	a, b := newFakeNode(0, instant), newFakeNode(1, instant)
	r, err := New([]serve.Node{a, b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 8; i++ {
		if _, err := r.Do(context.Background(), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.served.Load(); got != 8 {
		t.Fatalf("node 0 served %d of 8 (node 1: %d)", got, b.served.Load())
	}
}

func TestRouterLeastLoadedAvoidsBusyNode(t *testing.T) {
	// Node 0 is occupied by a blocked request; the next request must route
	// to idle node 1 even though 0 wins the tie-break.
	block := make(chan struct{})
	a := newFakeNode(0, func(int64) (time.Duration, error) { <-block; return 0, nil })
	b := newFakeNode(1, instant)
	r, err := New([]serve.Node{a, b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	done := make(chan error, 1)
	go func() {
		_, err := r.Do(context.Background(), nil, nil)
		done <- err
	}()
	// Wait until the first request is in flight on node 0.
	for r.nodes[0].inflight.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := r.Do(context.Background(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if b.served.Load() != 1 {
		t.Fatalf("second request did not avoid the busy node (node 1 served %d)", b.served.Load())
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, r.Report())
}

func TestRouterFailoverOnNodeError(t *testing.T) {
	// Node 0 answers every request with a crash error; the router must
	// fail over to node 1 and settle the request as one completion — the
	// failed attempt is visible only in the failover counter.
	a := newFakeNode(0, func(int64) (time.Duration, error) { return 0, &CrashError{Node: 0} })
	b := newFakeNode(1, instant)
	r, err := New([]serve.Node{a, b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var got int32 = -1
	if _, err := r.Do(context.Background(), nil, func(out *tensor.Tensor) { got = out.I32[0] }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("request served by node %d, want failover to 1", got)
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != 1 || rep.Failed != 0 || rep.Failovers != 1 {
		t.Fatalf("failover accounting off:\n%s", rep)
	}
}

func TestRouterAllNodesFailing(t *testing.T) {
	// Every node errors: the request settles as exactly one failure,
	// after trying each node once.
	mk := func(id int) *fakeNode {
		return newFakeNode(id, func(int64) (time.Duration, error) { return 0, &CrashError{Node: id} })
	}
	nodes := []serve.Node{mk(0), mk(1), mk(2)}
	r, err := New(nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Do(context.Background(), nil, nil)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want the last node's crash error, got %v", err)
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Failed != 1 || rep.Completed != 0 || rep.Failovers != 2 {
		t.Fatalf("all-fail accounting off:\n%s", rep)
	}
	for i, n := range nodes {
		if n.(*fakeNode).calls.Load() != 1 {
			t.Fatalf("node %d tried %d times, want exactly once", i, n.(*fakeNode).calls.Load())
		}
	}
}

func TestRouterHealthStateMachine(t *testing.T) {
	// Probe outcomes drive up → down → up with typed ordered events, and
	// a down node is excluded from routing.
	var failing atomic.Bool
	a := newFakeNode(0, func(int64) (time.Duration, error) {
		if failing.Load() {
			return 0, &CrashError{Node: 0}
		}
		return 0, nil
	})
	b := newFakeNode(1, instant)
	var events []StateEvent
	r, err := New([]serve.Node{a, b}, Config{
		ProbeFailThreshold:    2,
		ProbeRecoverThreshold: 2,
		ProbeFill:             func(*tensor.Tensor) {},
		OnStateChange:         func(ev StateEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if states := r.CheckNow(); states[0] != NodeUp || states[1] != NodeUp {
		t.Fatalf("healthy fleet probed to %v", states)
	}
	failing.Store(true)
	r.CheckNow()
	if got := r.States()[0]; got != NodeUp {
		t.Fatalf("node 0 %s after one probe failure (threshold 2)", got)
	}
	r.CheckNow()
	if got := r.States()[0]; got != NodeDown {
		t.Fatalf("node 0 %s after crossing the failure threshold", got)
	}
	// Down nodes are excluded: requests go to node 1 despite the tie-break.
	servedBefore := b.served.Load()
	if _, err := r.Do(context.Background(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if b.served.Load() != servedBefore+1 {
		t.Fatal("request routed to a down node")
	}
	// Recovery: two clean probes bring it back.
	failing.Store(false)
	r.CheckNow()
	if got := r.States()[0]; got != NodeDown {
		t.Fatalf("node 0 %s after one clean probe (recover threshold 2)", got)
	}
	r.CheckNow()
	if got := r.States()[0]; got != NodeUp {
		t.Fatalf("node 0 %s after recovery threshold", got)
	}

	if len(events) != 2 {
		t.Fatalf("want 2 transitions (down, up), got %v", events)
	}
	if events[0].Node != 0 || events[0].From != NodeUp || events[0].To != NodeDown {
		t.Fatalf("first event off: %s", events[0])
	}
	if events[1].Node != 0 || events[1].From != NodeDown || events[1].To != NodeUp {
		t.Fatalf("second event off: %s", events[1])
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("event sequence numbers off: %s, %s", events[0], events[1])
	}
	if evs := r.Events(); len(evs) != 2 || evs[0] != events[0] || evs[1] != events[1] {
		t.Fatalf("event ring disagrees with callback: %v vs %v", evs, events)
	}
	rep := r.Report()
	if rep.Transitions != 2 || rep.ProbeFailures != 2 || rep.ProbeSuccesses+rep.ProbeFailures != 10 {
		t.Fatalf("probe accounting off:\n%s", rep)
	}
	if rep.Nodes[0].State != NodeUp {
		t.Fatalf("report state off:\n%s", rep)
	}
	if g := r.Metrics().Snapshot().Gauges[`hdc_router_node_state{node="0"}`]; g != int64(NodeUp) {
		t.Fatalf("node state gauge %d, want up", g)
	}
}

func TestRouterDegradedNodeDeWeighted(t *testing.T) {
	// A slow-probing node goes degraded (not down) and loses the idle
	// tie-break to a healthy peer, but remains routable.
	a := newFakeNode(0, func(int64) (time.Duration, error) { return 3 * time.Millisecond, nil })
	b := newFakeNode(1, instant)
	r, err := New([]serve.Node{a, b}, Config{
		DegradedLatency: time.Millisecond,
		ProbeFill:       func(*tensor.Tensor) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.CheckNow()
	if got := r.States()[0]; got != NodeDegraded {
		t.Fatalf("slow node %s, want degraded", got)
	}
	if h := r.Health(); h != serve.Degraded {
		t.Fatalf("aggregate health %s with a degraded node", h)
	}
	servedBefore := b.served.Load() // the probe itself served one request
	for i := 0; i < 4; i++ {
		if _, err := r.Do(context.Background(), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.served.Load() - servedBefore; got != 4 {
		t.Fatalf("degraded node still wins placement: node 1 served %d of 4", got)
	}
}

func TestRouterHedgeWinsOverStall(t *testing.T) {
	// Node 0 stalls far beyond the hedge delay; the hedge on node 1 wins,
	// consume runs exactly once, and the stalled loser (cancelled, then
	// erroring) is never counted as a completion.
	a := newFakeNode(0, func(int64) (time.Duration, error) { return time.Second, nil })
	b := newFakeNode(1, instant)
	r, err := New([]serve.Node{a, b}, Config{
		Hedge: HedgeConfig{Enabled: true, Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	var consumes atomic.Int64
	var got int32 = -1
	start := time.Now()
	res, err := r.Do(context.Background(), nil, func(out *tensor.Tensor) {
		consumes.Add(1)
		got = out.I32[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("hedged request took %v; the stalled primary was not overtaken", elapsed)
	}
	if got != 1 || res.Device != 1 {
		t.Fatalf("winner was node %d / result device %d, want the hedge on 1", got, res.Device)
	}
	if err := r.Close(); err != nil { // waits for the reaper
		t.Fatal(err)
	}
	if consumes.Load() != 1 {
		t.Fatalf("consume ran %d times, want exactly once", consumes.Load())
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != 1 || rep.HedgesFired != 1 || rep.HedgesWon != 1 {
		t.Fatalf("hedge accounting off:\n%s", rep)
	}
	// The cancelled primary returned ctx.Err, so it is not wasted work.
	if rep.HedgesWasted != 0 {
		t.Fatalf("cancelled loser miscounted as wasted:\n%s", rep)
	}
}

func TestRouterHedgeWastedWhenBothComplete(t *testing.T) {
	// Node 0 is slow but uncancellable-fast-enough to finish anyway: both
	// attempts complete, one result is discarded, consume still runs once
	// and completed still counts one.
	block := make(chan struct{})
	a := newFakeNode(0, func(int64) (time.Duration, error) {
		<-block // ignores ctx: completes regardless of cancellation
		return 0, nil
	})
	b := newFakeNode(1, instant)
	r, err := New([]serve.Node{a, b}, Config{
		Hedge: HedgeConfig{Enabled: true, Delay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	var consumes atomic.Int64
	if _, err := r.Do(context.Background(), nil, func(*tensor.Tensor) { consumes.Add(1) }); err != nil {
		t.Fatal(err)
	}
	close(block) // let the loser finish now
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if consumes.Load() != 1 {
		t.Fatalf("consume ran %d times, want exactly once", consumes.Load())
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != 1 {
		t.Fatalf("duplicate completion double-counted:\n%s", rep)
	}
	if rep.HedgesFired != 1 || rep.HedgesWon != 1 || rep.HedgesWasted != 1 {
		t.Fatalf("wasted-hedge accounting off:\n%s", rep)
	}
}

func TestRouterHedgeFallsBackWhenBothFail(t *testing.T) {
	// Both hedge attempts fail; the router must still settle the request
	// by synchronous failover to the remaining node — one completion, no
	// double counts.
	crash := func(id int) func(int64) (time.Duration, error) {
		return func(int64) (time.Duration, error) { return time.Millisecond, &CrashError{Node: id} }
	}
	a, b := newFakeNode(0, crash(0)), newFakeNode(1, crash(1))
	c := newFakeNode(2, instant)
	r, err := New([]serve.Node{a, b, c}, Config{
		Hedge: HedgeConfig{Enabled: true, Delay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got int32 = -1
	if _, err := r.Do(context.Background(), nil, func(out *tensor.Tensor) { got = out.I32[0] }); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("request served by node %d, want fallback to 2", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Completed != 1 || rep.Failed != 0 {
		t.Fatalf("fallback accounting off:\n%s", rep)
	}
}

func TestRouterHedgeAccountingUnderLoad(t *testing.T) {
	// A concurrent burst over a jittery fleet with hedging on: at drain,
	// every submitted request settled exactly once and each completion
	// consumed exactly once — the structural no-double-count guarantee.
	mk := func(id int) *fakeNode {
		return newFakeNode(id, func(call int64) (time.Duration, error) {
			// Every 7th call stalls long enough to trigger a hedge.
			if call%7 == 0 {
				return 20 * time.Millisecond, nil
			}
			// Every 11th errors, driving failovers.
			if call%11 == 0 {
				return 0, fmt.Errorf("fake node %d transient", id)
			}
			return 200 * time.Microsecond, nil
		})
	}
	r, err := New([]serve.Node{mk(0), mk(1), mk(2), mk(3)}, Config{
		Hedge: HedgeConfig{Enabled: true, Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	var wg sync.WaitGroup
	var consumes atomic.Int64
	var completions atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.Do(context.Background(), nil, func(*tensor.Tensor) { consumes.Add(1) })
			if err == nil {
				completions.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	checkInvariant(t, rep)
	if rep.Submitted != n {
		t.Fatalf("submitted %d, want %d", rep.Submitted, n)
	}
	if int64(rep.Completed) != completions.Load() {
		t.Fatalf("router counted %d completions, callers saw %d", rep.Completed, completions.Load())
	}
	if consumes.Load() != completions.Load() {
		t.Fatalf("%d consumes for %d completions — exactly-once broken", consumes.Load(), completions.Load())
	}
	if rep.HedgesFired == 0 {
		t.Fatalf("stall script fired no hedges:\n%s", rep)
	}
}

func TestRouterDrainShedsNewWork(t *testing.T) {
	a := newFakeNode(0, instant)
	r, err := New([]serve.Node{a}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Do(context.Background(), nil, nil)
	var shed *serve.ShedError
	if !errors.As(err, &shed) || shed.Cause != serve.ShedDraining {
		t.Fatalf("post-drain Do returned %v, want draining shed", err)
	}
	checkInvariant(t, r.Report())
}
