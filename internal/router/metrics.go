package router

import (
	"fmt"

	"hdcedge/internal/metrics"
)

// routerMetrics holds the router's registry handles. Counter names follow
// the repo's Prometheus convention (labels spelled into the name). The
// request counters partition every Do call into exactly one outcome, so
// completed + shed + deadline + cancelled + failed always re-adds to
// submitted — the hedging paths never double-settle a request.
type routerMetrics struct {
	reg *metrics.Registry

	submitted        *metrics.Counter
	completed        *metrics.Counter
	shed             *metrics.Counter
	deadlineExceeded *metrics.Counter
	cancelled        *metrics.Counter
	failed           *metrics.Counter

	failovers    *metrics.Counter // synchronous re-routes after a node error
	hedgesFired  *metrics.Counter // second attempts launched
	hedgesWon    *metrics.Counter // requests whose winning result was the hedge
	hedgesWasted *metrics.Counter // duplicate attempts whose result was discarded

	probeSuccesses *metrics.Counter
	probeFailures  *metrics.Counter
	transitions    *metrics.Counter
	nodeState      []*metrics.Gauge // per node, value = NodeState

	latency *metrics.LiveHistogram // router-observed end-to-end, drives adaptive hedging
}

func newRouterMetrics(reg *metrics.Registry, nodes int) *routerMetrics {
	m := &routerMetrics{
		reg:              reg,
		submitted:        reg.Counter("hdc_router_submitted_total"),
		completed:        reg.Counter("hdc_router_completed_total"),
		shed:             reg.Counter("hdc_router_shed_total"),
		deadlineExceeded: reg.Counter("hdc_router_deadline_exceeded_total"),
		cancelled:        reg.Counter("hdc_router_cancelled_total"),
		failed:           reg.Counter("hdc_router_failed_total"),
		failovers:        reg.Counter("hdc_router_failovers_total"),
		hedgesFired:      reg.Counter(`hdc_router_hedges_total{outcome="fired"}`),
		hedgesWon:        reg.Counter(`hdc_router_hedges_total{outcome="won"}`),
		hedgesWasted:     reg.Counter(`hdc_router_hedges_total{outcome="wasted"}`),
		probeSuccesses:   reg.Counter(`hdc_router_probes_total{outcome="success"}`),
		probeFailures:    reg.Counter(`hdc_router_probes_total{outcome="failure"}`),
		transitions:      reg.Counter("hdc_router_state_transitions_total"),
		latency:          reg.Histogram("hdc_router_latency_seconds"),
	}
	for i := 0; i < nodes; i++ {
		m.nodeState = append(m.nodeState,
			reg.Gauge(fmt.Sprintf("hdc_router_node_state{node=%q}", fmt.Sprint(i))))
	}
	return m
}
