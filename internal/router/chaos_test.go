package router

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

func TestParseChaos(t *testing.T) {
	good := []struct {
		spec string
		want map[int]ChaosPlan
	}{
		{"", map[int]ChaosPlan{}},
		{"0:crash", map[int]ChaosPlan{0: {Mode: ChaosCrash, Seed: 7}}},
		{"2:slow=8", map[int]ChaosPlan{2: {Mode: ChaosSlow, Factor: 8, Seed: 9}}},
		{"1:slow", map[int]ChaosPlan{1: {Mode: ChaosSlow, Factor: 8, Seed: 8}}},
		{"3:hang@0.5", map[int]ChaosPlan{3: {Mode: ChaosHang, Rate: 0.5, Seed: 10}}},
		{"0:crash, 2:slow=4@0.25", map[int]ChaosPlan{
			0: {Mode: ChaosCrash, Seed: 7},
			2: {Mode: ChaosSlow, Factor: 4, Rate: 0.25, Seed: 9},
		}},
	}
	for _, tc := range good {
		plans, err := ParseChaos(tc.spec, 7)
		if err != nil {
			t.Fatalf("ParseChaos(%q): %v", tc.spec, err)
		}
		if len(plans) != len(tc.want) {
			t.Fatalf("ParseChaos(%q) = %v, want %v", tc.spec, plans, tc.want)
		}
		for node, want := range tc.want {
			if plans[node] != want {
				t.Fatalf("ParseChaos(%q)[%d] = %+v, want %+v", tc.spec, node, plans[node], want)
			}
		}
	}
	bad := []struct {
		spec        string
		wantSegment string
	}{
		{"crash", "crash"},                // no node prefix
		{"-1:crash", "-1:crash"},          // negative node
		{"x:crash", "x:crash"},            // non-integer node
		{"0:melt", "0:melt"},              // unknown mode
		{"0:crash=2", "0:crash=2"},        // factor on a non-slow mode
		{"0:slow=1", "0:slow=1"},          // factor must exceed 1
		{"0:slow=0.5", "0:slow=0.5"},      // ditto
		{"0:hang@1.5", "0:hang@1.5"},      // rate outside [0, 1]
		{"0:crash@0.5", "0:crash@0.5"},    // crash is not rateable
		{"0:crash,0:hang", "0:hang"},      // duplicate node
		{"0:slow=x", "0:slow=x"},          // bad factor
		{"0:hang@x", "0:hang@x"},          // bad rate
		{"0:crash,", ""},                  // trailing comma leaves an empty segment
		{",0:crash", ""},                  // leading comma too
		{"0:crash,,1:hang", ""},           // and a doubled one
		{"0:crash, ,1:hang", ""},          // whitespace-only segment
		{"1:slow,1:slow=4", "1:slow=4"},   // duplicate via different forms
		{"2:hang@0.5,0:melt", "0:melt"},   // later segment blamed, not the spec head
		{"0:crash,1:hang@-0.1", "1:hang@-0.1"}, // negative rate
	}
	for _, tc := range bad {
		plans, err := ParseChaos(tc.spec, 7)
		if err == nil {
			t.Fatalf("ParseChaos(%q) accepted: %v", tc.spec, plans)
		}
		var se *ChaosSpecError
		if !errors.As(err, &se) {
			t.Fatalf("ParseChaos(%q) error %v (%T) is not a *ChaosSpecError", tc.spec, err, err)
		}
		if se.Spec != tc.spec {
			t.Fatalf("ParseChaos(%q) error carries spec %q", tc.spec, se.Spec)
		}
		if se.Segment != tc.wantSegment {
			t.Fatalf("ParseChaos(%q) blames segment %q, want %q (%v)", tc.spec, se.Segment, tc.wantSegment, err)
		}
		if se.Reason == "" || !strings.Contains(err.Error(), se.Reason) {
			t.Fatalf("ParseChaos(%q) error %q does not render its reason %q", tc.spec, err, se.Reason)
		}
	}
}

// FuzzParseChaos hardens the spec parser against arbitrary operator input:
// it must never panic, every rejection must be a typed *ChaosSpecError
// carrying the spec, and every accepted plan must validate cleanly with
// the node-offset seed.
func FuzzParseChaos(f *testing.F) {
	seeds := []string{
		"", "0:crash", "2:slow=8", "1:slow", "3:hang@0.5",
		"0:crash, 2:slow=4@0.25", "crash", "-1:crash", "x:crash",
		"0:melt", "0:crash=2", "0:slow=1", "0:slow=0.5", "0:hang@1.5",
		"0:crash@0.5", "0:crash,0:hang", "0:slow=x", "0:hang@x",
		"0:crash,", ",,", "0:slow=8@0.5@0.5", "00:crash", "0:SLOW=2",
		"9999999999999999999:crash", "0:slow=1e300", "0:hang@0", "0:hang@1",
	}
	for _, s := range seeds {
		f.Add(s, uint64(7))
	}
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		plans, err := ParseChaos(spec, seed)
		if err != nil {
			var se *ChaosSpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseChaos(%q) error %v (%T) is not a *ChaosSpecError", spec, err, err)
			}
			if se.Spec != spec {
				t.Fatalf("ParseChaos(%q) error carries spec %q", spec, se.Spec)
			}
			if plans != nil {
				t.Fatalf("ParseChaos(%q) returned plans alongside an error", spec)
			}
			return
		}
		for node, p := range plans {
			if node < 0 {
				t.Fatalf("ParseChaos(%q) accepted node %d", spec, node)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("ParseChaos(%q) produced an invalid plan for node %d: %v", spec, node, err)
			}
			if !p.Enabled() {
				t.Fatalf("ParseChaos(%q) produced a no-op plan for node %d: %+v", spec, node, p)
			}
			if p.Seed != seed+uint64(node) {
				t.Fatalf("ParseChaos(%q) node %d seed %d, want %d", spec, node, p.Seed, seed+uint64(node))
			}
		}
	})
}

func TestChaosCrashNode(t *testing.T) {
	inner := newFakeNode(0, instant)
	c, err := NewChaosNode(inner, 0, ChaosPlan{Mode: ChaosCrash, After: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The first two requests pass through, then the node is dead for good.
	for i := 0; i < 2; i++ {
		if _, err := c.Do(context.Background(), nil, nil); err != nil {
			t.Fatalf("request %d before the crash point: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		_, err := c.Do(context.Background(), nil, nil)
		var crash *CrashError
		if !errors.As(err, &crash) || crash.Node != 0 {
			t.Fatalf("post-crash request %d returned %v, want CrashError", i, err)
		}
	}
	if inner.calls.Load() != 2 {
		t.Fatalf("crashed node still forwarded requests: %d inner calls", inner.calls.Load())
	}
}

func TestChaosHangNodeReleasedByContext(t *testing.T) {
	inner := newFakeNode(0, instant)
	c, err := NewChaosNode(inner, 0, ChaosPlan{Mode: ChaosHang})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Do(ctx, nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung request returned %v, want deadline", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("hung request settled before its context died")
	}
	if inner.calls.Load() != 0 {
		t.Fatal("hang forwarded the request to the inner node")
	}
}

func TestChaosSlowNodeStretchesLatency(t *testing.T) {
	inner := newFakeNode(0, func(int64) (time.Duration, error) { return 2 * time.Millisecond, nil })
	c, err := NewChaosNode(inner, 0, ChaosPlan{Mode: ChaosSlow, Factor: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	consumed := false
	if _, err := c.Do(context.Background(), nil, func(*tensor.Tensor) { consumed = true }); err != nil {
		t.Fatal(err)
	}
	// ~2ms inner + ~6ms injected stall; allow generous scheduling slack
	// below but insist on well beyond the inner latency alone.
	if elapsed := time.Since(start); elapsed < 6*time.Millisecond {
		t.Fatalf("gray-slow node answered in %v, want ≥ ~4× the inner 2ms", elapsed)
	}
	if !consumed {
		t.Fatal("slow node dropped the result")
	}
}

func TestChaosRateIsSeededDeterministic(t *testing.T) {
	// Two hang@0.5 nodes with the same seed must strand exactly the same
	// request positions; a different seed must give a different pattern.
	pattern := func(seed uint64) []bool {
		inner := newFakeNode(0, instant)
		c, err := NewChaosNode(inner, 0, ChaosPlan{Mode: ChaosHang, Rate: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		hits := make([]bool, 64)
		for i := range hits {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			_, err := c.Do(ctx, nil, nil)
			cancel()
			hits[i] = errors.Is(err, context.DeadlineExceeded)
		}
		return hits
	}
	a, b, other := pattern(11), pattern(11), pattern(12)
	hitsA, diff := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d faulted under one run of seed 11 but not the other", i)
		}
		if a[i] {
			hitsA++
		}
		if a[i] != other[i] {
			diff++
		}
	}
	if hitsA < 16 || hitsA > 48 {
		t.Fatalf("rate 0.5 hit %d of 64 requests", hitsA)
	}
	if diff == 0 {
		t.Fatal("seeds 11 and 12 produced identical fault patterns")
	}
}

func TestChaosHungNodeDrainForceSettles(t *testing.T) {
	// Requests stranded by a hang must settle with the typed chaos drain
	// error the moment the node drains — Drain never waits for them.
	inner := newFakeNode(0, instant)
	c, err := NewChaosNode(inner, 0, ChaosPlan{Mode: ChaosHang})
	if err != nil {
		t.Fatal(err)
	}
	const stuck = 4
	errs := make(chan error, stuck)
	for i := 0; i < stuck; i++ {
		go func() {
			_, err := c.Do(context.Background(), nil, nil)
			errs <- err
		}()
	}
	// Wait for all of them to be admitted into the hang.
	for {
		c.mu.Lock()
		n := len(c.hung)
		c.mu.Unlock()
		if n == stuck {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := c.Drain(context.Background()); err != nil {
		t.Fatalf("drain with hung requests: %v", err)
	}
	for i := 0; i < stuck; i++ {
		var de *serve.DrainError
		if err := <-errs; !errors.As(err, &de) || de.Stage != "chaos-hung" {
			t.Fatalf("hung request %d settled with %v, want chaos-hung DrainError", i, err)
		}
	}
	// Post-drain submissions are shed, not hung.
	_, err = c.Do(context.Background(), nil, nil)
	var shed *serve.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("post-drain request returned %v, want shed", err)
	}
}
