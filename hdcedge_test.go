package hdcedge

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the library exactly as README's quickstart
// shows a downstream user would.

func TestFacadeEndToEnd(t *testing.T) {
	ds, err := Generate(SyntheticSpec(40, 1600, 4, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, NewRNG(2))

	cfg := DefaultTrainConfig()
	cfg.Dim = 1024
	cfg.Epochs = 6
	model, stats, err := Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUpdates() == 0 {
		t.Fatal("no training updates")
	}
	hostAcc := model.Accuracy(test)
	if hostAcc < 0.7 {
		t.Fatalf("host accuracy %.3f", hostAcc)
	}

	preds, timing, err := InferOnDevice(EdgeTPU(), model, test, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		if p == test.Y[i] {
			correct++
		}
	}
	devAcc := float64(correct) / float64(len(preds))
	if devAcc < hostAcc-0.05 {
		t.Fatalf("device accuracy %.3f vs host %.3f", devAcc, hostAcc)
	}
	if timing.Total() <= 0 {
		t.Fatal("no device timing")
	}
}

func TestFacadeBagging(t *testing.T) {
	ds, err := Generate(SyntheticSpec(36, 1600, 5, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, NewRNG(4))
	cfg := DefaultBaggingConfig()
	cfg.Dim = 1024
	ens, _, err := TrainBagging(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused := ens.Fuse()
	if fused.Dim() != 1024 {
		t.Fatalf("fused dim %d", fused.Dim())
	}
	if acc := fused.Accuracy(test); acc < 0.65 {
		t.Fatalf("fused accuracy %.3f", acc)
	}
}

func TestFacadeCoDesignTraining(t *testing.T) {
	ds, err := Generate(SyntheticSpec(30, 1200, 3, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, NewRNG(6))
	cfg := DefaultTrainConfig()
	cfg.Dim = 768
	cfg.Epochs = 6
	res, err := TrainOnDevice(EdgeTPU(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Model.Accuracy(test); acc < 0.7 {
		t.Fatalf("co-design accuracy %.3f", acc)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Catalog()) != 5 {
		t.Fatal("catalog size")
	}
	spec, err := CatalogSpec("MNIST")
	if err != nil || spec.Features != 784 {
		t.Fatalf("MNIST spec: %+v, %v", spec, err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 9 {
		t.Fatalf("only %d experiments", len(Experiments()))
	}
	var buf bytes.Buffer
	if err := RunExperiment("table1", DefaultExperimentConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PAMAP2") {
		t.Fatal("table1 render incomplete")
	}
}

func TestFacadePlatforms(t *testing.T) {
	if !EdgeTPU().HasAccel() {
		t.Fatal("EdgeTPU platform lacks accelerator")
	}
	if CPUBaseline().HasAccel() || RaspberryPi().HasAccel() {
		t.Fatal("CPU platforms must not carry accelerators")
	}
}

func TestFacadeApplications(t *testing.T) {
	// Regression.
	x, y := regressionToy()
	reg, _, err := TrainRegressor(x, y, RegressionConfig{Dim: 512, Epochs: 8, Nonlinear: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mse := reg.MSE(x, y); mse > 0.2 {
		t.Fatalf("facade regression MSE %.4f", mse)
	}
	// Clustering.
	ds, err := Generate(SyntheticSpec(16, 600, 3, 9), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds.X, ClusterConfig{K: 6, Dim: 512, Nonlinear: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Purity(ds.Y, ds.Classes); p < 0.5 {
		t.Fatalf("facade cluster purity %.3f", p)
	}
	// Sequences.
	enc := NewSequenceEncoder(4, 2048, 4, NewRNG(3))
	refs := [][]int{seqOf(200, 4, 10), seqOf(200, 4, 11)}
	m := NewSequenceMatcher(enc, refs)
	if idx, _ := m.Match(refs[1]); idx != 1 {
		t.Fatalf("facade matcher picked %d", idx)
	}
}

func TestFacadeFederated(t *testing.T) {
	ds, err := Generate(SyntheticSpec(24, 1600, 4, 12), 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, NewRNG(13))
	cfg := DefaultFederatedConfig()
	cfg.Dim = 768
	shards := ShardIID(train, cfg.Nodes, NewRNG(14))
	res, err := FederatedTrain(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.RoundAccuracy[len(res.RoundAccuracy)-1]; acc < 0.7 {
		t.Fatalf("facade federated accuracy %.3f", acc)
	}
	if len(ShardByLabel(train, 4)) != 4 {
		t.Fatal("ShardByLabel count")
	}
}

func regressionToy() (*Tensor, []float32) {
	r := NewRNG(7)
	const n = 600
	x := tensorNew(n, 3)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		row := x.F32[i*3 : (i+1)*3]
		for j := range row {
			row[j] = float32(r.Float64()*2 - 1)
		}
		y[i] = row[0]*row[1] + 0.5*row[2]
	}
	return x, y
}

func seqOf(length, alphabet int, seed uint64) []int {
	r := NewRNG(seed)
	s := make([]int, length)
	for i := range s {
		s[i] = r.Intn(alphabet)
	}
	return s
}
